// Package socialgraph implements the social network substrate the rest of
// the reproduction runs on: accounts, posts, likes, comments, and pages,
// held in a concurrency-safe in-memory store with a full activity log.
//
// The store models the Facebook semantics the paper's measurements depend
// on:
//
//   - a like is idempotent per (account, object) — repeated likes by the
//     same account do not inflate counts, which is why collusion networks
//     must sample *distinct* member tokens per request and why honeypot
//     milking converges on the true membership (Figure 4);
//   - every write is attributed to the application and source IP that
//     performed it, which is what the Section 6 countermeasures key on;
//   - each account has an activity log of its outgoing actions, which the
//     honeypots crawl to observe how collusion networks spend their tokens
//     (Table 4 "outgoing activities", Figure 7).
//
// The store is lock-striped: state is partitioned across power-of-two
// shards keyed by the FNV-1a hash of each object's primary ID, so
// simulated Graph API traffic from many goroutines (the parallel milking
// driver, the organic background workload) scales with cores instead of
// serializing on one mutex. See shard.go for the routing and lock-ordering
// rules, and reference.go for the single-lock oracle the differential
// tests check this implementation against.
package socialgraph

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
)

// Errors returned by store operations.
var (
	ErrNotFound         = errors.New("socialgraph: object not found")
	ErrSuspended        = errors.New("socialgraph: account suspended")
	ErrAlreadyLiked     = errors.New("socialgraph: already liked")
	ErrNotLiked         = errors.New("socialgraph: not liked")
	ErrEmptyMessage     = errors.New("socialgraph: empty message")
	ErrInvalidReference = errors.New("socialgraph: invalid object reference")
)

// StoreError is the typed error the write paths return: one of the
// sentinels above plus the role of the ID the check concerned. It
// replaces the per-rejection fmt.Errorf("%q: %w") constructions, which
// allocated on every denial — a collusion burst against a mostly-liked
// object is rejection-heavy, and so is every post-intervention scale
// run. The common denial kinds are returned as the preallocated values
// below, so rejecting an op allocates nothing; errors.Is dispatch keeps
// working through Unwrap.
type StoreError struct {
	Role string // which ID failed the check: "liker", "commenter", "object", ...
	ID   string // the offending ID; empty on the preallocated hot-path values
	Err  error  // the sentinel
}

// Error implements error. The preallocated values render lazily and
// without the ID ("liker: socialgraph: account suspended"); errors built
// on cold paths keep the quoted-ID form.
func (e *StoreError) Error() string {
	if e.ID == "" {
		return e.Role + ": " + e.Err.Error()
	}
	return fmt.Sprintf("%s %q: %v", e.Role, e.ID, e.Err)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *StoreError) Unwrap() error { return e.Err }

// Preallocated denial values for the hot write paths. One value per
// (role, sentinel) pair that a like, unlike, or comment can reject with;
// returning them is allocation-free (pinned by TestAllocGateDenialPaths).
var (
	errLikerNotFound      = &StoreError{Role: "liker", Err: ErrNotFound}
	errLikerSuspended     = &StoreError{Role: "liker", Err: ErrSuspended}
	errAlreadyLiked       = &StoreError{Role: "like", Err: ErrAlreadyLiked}
	errNotLiked           = &StoreError{Role: "like", Err: ErrNotLiked}
	errObjectInvalid      = &StoreError{Role: "object", Err: ErrInvalidReference}
	errCommenterNotFound  = &StoreError{Role: "commenter", Err: ErrNotFound}
	errCommenterSuspended = &StoreError{Role: "commenter", Err: ErrSuspended}
	errPostNotFound       = &StoreError{Role: "post", Err: ErrNotFound}
)

// Account is a user account.
type Account struct {
	ID        string
	Name      string
	Country   string
	CreatedAt time.Time
	Suspended bool
}

// Page is a fan page that can own posts and receive likes.
type Page struct {
	ID        string
	Name      string
	OwnerID   string
	CreatedAt time.Time
}

// Like records one like on an object.
type Like struct {
	AccountID string
	ObjectID  string
	AppID     string // application whose token performed the like ("" = first-party)
	SourceIP  string // IP the Graph API request originated from
	At        time.Time
}

// Comment is a comment on a post.
type Comment struct {
	ID        string
	PostID    string
	AccountID string
	Message   string
	AppID     string
	SourceIP  string
	At        time.Time
}

// Post is a status update on an account's or page's timeline.
type Post struct {
	ID        string
	AuthorID  string // account or page ID
	Message   string
	CreatedAt time.Time
}

// Verb enumerates activity-log actions.
type Verb string

// Activity verbs.
const (
	VerbPost    Verb = "post"
	VerbLike    Verb = "like"
	VerbComment Verb = "comment"
)

// Activity is one entry of an account's outgoing activity log.
type Activity struct {
	ActorID  string
	Verb     Verb
	ObjectID string // post/comment ID acted on or created
	TargetID string // owner (account or page) of the object acted on
	AppID    string
	SourceIP string
	At       time.Time
}

// Store is the in-memory social graph, lock-striped across shards. The
// zero value is not usable; use New or NewWithShards. Store is safe for
// concurrent use, and when driven sequentially is observationally
// identical to the single-lock reference implementation (enforced by the
// differential tests).
type Store struct {
	minter     *ids.Minter
	shards     []*shard
	mask       uint32
	contention *metrics.ShardContention

	// retentionNanos is the analytics window in nanoseconds; 0 (the
	// default) means infinite retention and makes sweeps no-ops.
	retentionNanos atomic.Int64
	retention      *metrics.RetentionCounters
}

// New returns an empty Store with the default GOMAXPROCS-scaled shard
// count.
func New() *Store { return NewWithShards(0) }

// NewWithShards returns an empty Store striped across n shards. n is
// rounded up to a power of two and clamped to [1, 1024]; n <= 0 selects
// the default.
func NewWithShards(n int) *Store { return NewSized(n, 0) }

// NewSized returns an empty Store striped across n shards with its
// account-keyed maps presized for accountHint accounts. The scale
// workload passes the target population so building a multi-million
// account graph does not pay for incremental map rehashing.
func NewSized(n, accountHint int) *Store {
	if n <= 0 {
		n = defaultShardCount()
	}
	n = nextPowerOfTwo(n)
	perShard := 0
	if accountHint > 0 {
		perShard = accountHint / n
	}
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = newShardSized(perShard)
	}
	return &Store{
		minter:     ids.NewMinter(),
		shards:     shards,
		mask:       uint32(n - 1),
		contention: metrics.NewShardContention(n),
		retention:  &metrics.RetentionCounters{},
	}
}

// ShardCount returns the number of lock stripes.
func (s *Store) ShardCount() int { return len(s.shards) }

// Contention returns the store's per-shard lock-pressure counters. Every
// lock acquisition is recorded along with whether it had to wait, so the
// experiment harness can report whether the stripe count matches the
// offered load.
func (s *Store) Contention() *metrics.ShardContention { return s.contention }

// CreateAccount registers a new account and returns it.
func (s *Store) CreateAccount(name, country string, at time.Time) Account {
	a := &Account{
		ID:        s.minter.Next(ids.KindAccount),
		Name:      name,
		Country:   country,
		CreatedAt: at,
	}
	sh := s.lock(a.ID)
	sh.accounts[a.ID] = a
	sh.mu.Unlock()
	return *a
}

// Account returns the account with the given ID.
func (s *Store) Account(id string) (Account, error) {
	sh := s.rlock(id)
	defer sh.mu.RUnlock()
	a, ok := sh.accounts[id]
	if !ok {
		return Account{}, fmt.Errorf("account %q: %w", id, ErrNotFound)
	}
	return *a, nil
}

// AccountCount returns the number of registered accounts.
func (s *Store) AccountCount() int {
	n := 0
	for i := range s.shards {
		sh := s.rlockIdx(i)
		n += len(sh.accounts)
		sh.mu.RUnlock()
	}
	return n
}

// SetSuspended marks an account suspended or reinstated. Suspended accounts
// cannot perform writes.
func (s *Store) SetSuspended(id string, suspended bool) error {
	sh := s.lock(id)
	defer sh.mu.Unlock()
	a, ok := sh.accounts[id]
	if !ok {
		return fmt.Errorf("account %q: %w", id, ErrNotFound)
	}
	a.Suspended = suspended
	return nil
}

// CreatePage registers a fan page owned by an account.
func (s *Store) CreatePage(ownerID, name string, at time.Time) (Page, error) {
	// Existence is a stable property (accounts are never deleted), so the
	// owner check does not need to be atomic with the page insert.
	ownerShard := s.rlock(ownerID)
	_, ok := ownerShard.accounts[ownerID]
	ownerShard.mu.RUnlock()
	if !ok {
		return Page{}, fmt.Errorf("page owner %q: %w", ownerID, ErrNotFound)
	}
	p := &Page{
		ID:        s.minter.Next(ids.KindPage),
		Name:      name,
		OwnerID:   ownerID,
		CreatedAt: at,
	}
	sh := s.lock(p.ID)
	sh.pages[p.ID] = p
	sh.mu.Unlock()
	return *p, nil
}

// Page returns the page with the given ID.
func (s *Store) Page(id string) (Page, error) {
	sh := s.rlock(id)
	defer sh.mu.RUnlock()
	p, ok := sh.pages[id]
	if !ok {
		return Page{}, fmt.Errorf("page %q: %w", id, ErrNotFound)
	}
	return *p, nil
}

// WriteMeta attributes a write to the app and source IP that performed it.
type WriteMeta struct {
	AppID    string
	SourceIP string
	At       time.Time
}

// CreatePost publishes a status update on the author's timeline. The author
// may be an account or a page (pages post via their owner).
//
// The post ID's shard is unknown until the ID is minted, and minting must
// happen only after validation so the ID stream matches the reference
// store; the write is therefore phased — validate, mint, insert the post
// record, then publish it in the author's index and the actor's activity
// log — with the post record inserted first so every ID reachable through
// PostsByAuthor always resolves.
func (s *Store) CreatePost(authorID, message string, meta WriteMeta) (Post, error) {
	if message == "" {
		return Post{}, ErrEmptyMessage
	}
	actor := authorID
	authorShard := s.rlock(authorID)
	if a, ok := authorShard.accounts[authorID]; ok {
		if a.Suspended {
			authorShard.mu.RUnlock()
			return Post{}, fmt.Errorf("author %q: %w", authorID, ErrSuspended)
		}
	} else if p, ok := authorShard.pages[authorID]; ok {
		actor = p.OwnerID
	} else {
		authorShard.mu.RUnlock()
		return Post{}, fmt.Errorf("author %q: %w", authorID, ErrNotFound)
	}
	authorShard.mu.RUnlock()

	post := &Post{
		ID:        s.minter.Next(ids.KindPost),
		AuthorID:  authorID,
		Message:   message,
		CreatedAt: meta.At,
	}
	sh := s.lock(post.ID)
	sh.posts[post.ID] = post
	sh.mu.Unlock()

	sh = s.lock(authorID)
	sh.postsByAuthor[authorID] = append(sh.postsByAuthor[authorID], post.ID)
	sh.mu.Unlock()

	sh = s.lock(actor)
	sh.activityFor(actor).append(&sh.acts, Activity{
		ActorID: actor, Verb: VerbPost, ObjectID: post.ID, TargetID: authorID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	})
	sh.mu.Unlock()
	return *post, nil
}

// Post returns the post with the given ID.
func (s *Store) Post(id string) (Post, error) {
	sh := s.rlock(id)
	defer sh.mu.RUnlock()
	p, ok := sh.posts[id]
	if !ok {
		return Post{}, fmt.Errorf("post %q: %w", id, ErrNotFound)
	}
	return *p, nil
}

// PostsByAuthor returns the author's posts in creation order.
func (s *Store) PostsByAuthor(authorID string) []Post {
	// Snapshot the slice header, not a copy: the index is append-only and
	// entries [0, len) are never rewritten in place, so the captured view
	// stays valid after the lock drops even if concurrent posts grow (or
	// reallocate) the index past our length.
	sh := s.rlock(authorID)
	idsList := sh.postsByAuthor[authorID]
	sh.mu.RUnlock()
	if len(idsList) == 0 {
		return nil
	}
	out := make([]Post, 0, len(idsList))
	for _, id := range idsList {
		psh := s.rlock(id)
		if p, ok := psh.posts[id]; ok {
			out = append(out, *p)
		}
		psh.mu.RUnlock()
	}
	return out
}

// AddLike records a like by accountID on the object (post or page).
// Likes are idempotent: liking an object twice returns ErrAlreadyLiked.
func (s *Store) AddLike(accountID, objectID string, meta WriteMeta) error {
	return s.addLikePair(accountID, objectID, meta)
}

// addLikePair takes the liker's and object's stripes in ascending index
// order, applies the like, and releases in reverse. The whole scope is
// inline (no unlock closure): lockOrdered's returned func forced a heap
// allocation per like, which is pure overhead on the hottest write path.
//
//collusionvet:lockorder
func (s *Store) addLikePair(accountID, objectID string, meta WriteMeta) error {
	ai := s.shardIndex(accountID)
	oi := s.shardIndex(objectID)
	lo, hi := ai, oi
	if lo > hi {
		lo, hi = hi, lo
	}
	s.lockIdx(lo)
	if hi != lo {
		s.lockIdx(hi)
	}
	err := likeLocked(s.shards[ai], s.shards[oi], accountID, objectID, meta)
	if hi != lo {
		s.shards[hi].mu.Unlock()
	}
	s.shards[lo].mu.Unlock()
	return err
}

// likeLocked validates and applies one like. The caller must hold the
// write locks of both shards; AddLike and AddLikeBatch share this core so
// batched and sequential likes have identical semantics by construction.
//
// The success path is allocation-free at steady state: the like history
// and its chunks come from the shard free lists, and the activity entry
// lands in a pooled chunk (pinned by TestAllocGateAddLikeBatchSteadyState).
// Denials return the preallocated StoreError values.
//
//collusionvet:locked
func likeLocked(acctShard, objShard *shard, accountID, objectID string, meta WriteMeta) error {
	a, ok := acctShard.accounts[accountID]
	if !ok {
		return errLikerNotFound
	}
	if a.Suspended {
		return errLikerSuspended
	}
	targetID, err := ownerOfShard(objShard, objectID)
	if err != nil {
		return err
	}
	h := objShard.likeHistoryFor(objectID)
	if _, dup := h.set[accountID]; dup {
		return errAlreadyLiked
	}
	// Store the account record's own ID string so the edge and the like
	// retain the canonical heap string, not a caller-transient copy.
	h.set[a.ID] = Like{
		AccountID: a.ID, ObjectID: objectID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	}
	seq := objShard.likeSeq[objectID]
	objShard.likeSeq[objectID] = seq + 1
	h.order.append(&objShard.edges, edgeRef{seq: seq, id: a.ID})
	acctShard.activityFor(a.ID).append(&acctShard.acts, Activity{
		ActorID: a.ID, Verb: VerbLike, ObjectID: objectID, TargetID: targetID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	})
	return nil
}

// RemoveLike deletes a like, as Facebook did when purging fake likes.
// Removal shifts entries only within the edge's own chunk — the chunked
// list never copies the tail the way the old slice splice did — and an
// object whose last like is removed retires its whole history to the
// shard free list.
func (s *Store) RemoveLike(accountID, objectID string) error {
	sh := s.lock(objectID)
	defer sh.mu.Unlock()
	h, ok := sh.likes[objectID]
	if !ok {
		return errNotLiked
	}
	if _, liked := h.set[accountID]; !liked {
		return errNotLiked
	}
	delete(h.set, accountID)
	removeEdge(&h.order, &sh.edges, accountID)
	if len(h.set) == 0 {
		sh.retireLikeHistory(objectID, h)
	}
	return nil
}

// Likes returns the likes on an object in arrival order, sized and
// filled in one pass over the chunked history.
func (s *Store) Likes(objectID string) []Like {
	sh := s.rlock(objectID)
	defer sh.mu.RUnlock()
	h, ok := sh.likes[objectID]
	if !ok {
		return nil
	}
	out := make([]Like, 0, h.order.total)
	for c := h.order.head; c != nil; c = c.next {
		for i := 0; i < c.n; i++ {
			if l, ok := h.set[c.buf[i].id]; ok {
				out = append(out, l)
			}
		}
	}
	return out
}

// LikeCount returns the number of likes on an object.
func (s *Store) LikeCount(objectID string) int {
	sh := s.rlock(objectID)
	defer sh.mu.RUnlock()
	if h, ok := sh.likes[objectID]; ok {
		return len(h.set)
	}
	return 0
}

// HasLiked reports whether the account has liked the object.
func (s *Store) HasLiked(accountID, objectID string) bool {
	sh := s.rlock(objectID)
	defer sh.mu.RUnlock()
	h, ok := sh.likes[objectID]
	if !ok {
		return false
	}
	_, liked := h.set[accountID]
	return liked
}

// AddComment records a comment on a post. Comment records are co-located
// with their post's shard, so crawling a post's comments touches one
// stripe.
func (s *Store) AddComment(accountID, postID, message string, meta WriteMeta) (Comment, error) {
	if message == "" {
		return Comment{}, ErrEmptyMessage
	}
	return s.addCommentPair(accountID, postID, message, meta)
}

// addCommentPair is AddComment's lock scope: commenter and post stripes
// taken in ascending index order, inline like addLikePair.
//
//collusionvet:lockorder
func (s *Store) addCommentPair(accountID, postID, message string, meta WriteMeta) (Comment, error) {
	ai := s.shardIndex(accountID)
	pi := s.shardIndex(postID)
	lo, hi := ai, pi
	if lo > hi {
		lo, hi = hi, lo
	}
	s.lockIdx(lo)
	if hi != lo {
		s.lockIdx(hi)
	}
	c, err := s.commentLocked(s.shards[ai], s.shards[pi], accountID, postID, message, meta)
	if hi != lo {
		s.shards[hi].mu.Unlock()
	}
	s.shards[lo].mu.Unlock()
	return c, err
}

// commentLocked validates and applies one comment under both stripe
// locks. The comment record is drawn from the post shard's pool (sweeps
// refill it); the ID is minted only after validation so the ID stream
// matches the reference store.
//
//collusionvet:locked
func (s *Store) commentLocked(acctShard, postShard *shard, accountID, postID, message string, meta WriteMeta) (Comment, error) {
	a, ok := acctShard.accounts[accountID]
	if !ok {
		return Comment{}, errCommenterNotFound
	}
	if a.Suspended {
		return Comment{}, errCommenterSuspended
	}
	post, ok := postShard.posts[postID]
	if !ok {
		return Comment{}, errPostNotFound
	}
	c := postShard.newComment()
	c.ID = s.minter.Next(ids.KindComment)
	c.PostID = postID
	c.AccountID = a.ID
	c.Message = message
	c.AppID = meta.AppID
	c.SourceIP = meta.SourceIP
	c.At = meta.At
	postShard.comments[c.ID] = c
	seq := postShard.commentSeq[postID]
	postShard.commentSeq[postID] = seq + 1
	postShard.commentOrderFor(postID).append(&postShard.edges, edgeRef{seq: seq, id: c.ID})
	acctShard.activityFor(a.ID).append(&acctShard.acts, Activity{
		ActorID: a.ID, Verb: VerbComment, ObjectID: c.ID, TargetID: post.AuthorID,
		AppID: meta.AppID, SourceIP: meta.SourceIP, At: meta.At,
	})
	return *c, nil
}

// Comments returns the comments on a post in creation order.
func (s *Store) Comments(postID string) []Comment {
	sh := s.rlock(postID)
	defer sh.mu.RUnlock()
	l, ok := sh.commentOrder[postID]
	if !ok {
		return nil
	}
	out := make([]Comment, 0, l.total)
	for c := l.head; c != nil; c = c.next {
		for i := 0; i < c.n; i++ {
			if rec, ok := sh.comments[c.buf[i].id]; ok {
				out = append(out, *rec)
			}
		}
	}
	return out
}

// ActivityLog returns the account's outgoing activity in chronological
// (insertion) order, sized and filled in one pass over the chunks.
func (s *Store) ActivityLog(accountID string) []Activity {
	sh := s.rlock(accountID)
	defer sh.mu.RUnlock()
	l, ok := sh.activity[accountID]
	if !ok {
		return nil
	}
	out := make([]Activity, 0, l.total)
	for c := l.head; c != nil; c = c.next {
		out = append(out, c.buf[:c.n]...)
	}
	return out
}

// ActivitySince returns the account's outgoing activity at or after t.
func (s *Store) ActivitySince(accountID string, t time.Time) []Activity {
	sh := s.rlock(accountID)
	defer sh.mu.RUnlock()
	l, ok := sh.activity[accountID]
	if !ok {
		return nil
	}
	var out []Activity
	for c := l.head; c != nil; c = c.next {
		for i := 0; i < c.n; i++ {
			if !c.buf[i].At.Before(t) {
				out = append(out, c.buf[i])
			}
		}
	}
	return out
}

// ownerOfShard resolves the owner (account or page) of a likeable object.
// All candidate records live in the object's own shard, which the caller
// must hold.
//
//collusionvet:locked
func ownerOfShard(sh *shard, objectID string) (string, error) {
	if p, ok := sh.posts[objectID]; ok {
		return p.AuthorID, nil
	}
	if _, ok := sh.pages[objectID]; ok {
		return objectID, nil
	}
	if _, ok := sh.accounts[objectID]; ok {
		// Liking a profile is modelled as liking the account object itself
		// (the paper observes honeypots liking owners' profile pictures).
		return objectID, nil
	}
	return "", errObjectInvalid
}

// OwnerOf resolves the owner of a likeable object.
func (s *Store) OwnerOf(objectID string) (string, error) {
	sh := s.rlock(objectID)
	defer sh.mu.RUnlock()
	return ownerOfShard(sh, objectID)
}

// Stats summarises store contents; used by experiment reports.
type Stats struct {
	Accounts, Pages, Posts, Comments, Likes int
}

// Stats returns aggregate counts composed from per-shard snapshots.
func (s *Store) Stats() Stats {
	var st Stats
	for i := range s.shards {
		sh := s.rlockIdx(i)
		st.Accounts += len(sh.accounts)
		st.Pages += len(sh.pages)
		st.Posts += len(sh.posts)
		st.Comments += len(sh.comments)
		for _, h := range sh.likes {
			st.Likes += len(h.set)
		}
		sh.mu.RUnlock()
	}
	return st
}

// AccountIDs returns all account IDs in sorted order; used by tests and
// deterministic sampling.
func (s *Store) AccountIDs() []string {
	var out []string
	for i := range s.shards {
		sh := s.rlockIdx(i)
		for id := range sh.accounts {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
