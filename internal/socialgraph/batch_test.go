package socialgraph

// Tests for the batched like apply: unit coverage for the run grouping
// and the generalized ordered-lock helper, plus a fuzz target that
// derives adversarial batches (repeated likers, mixed objects, bogus
// IDs, a suspended account) from raw bytes and checks AddLikeBatch
// against a sequential AddLike replay on the single-lock reference
// store.

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

var batchEpoch = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

// batchWorld builds the same small population in a sharded store and the
// reference oracle: accounts (the last one suspended), posts, and pages.
func batchWorld(t testing.TB, shards, accounts, posts, pages int) (*Store, *referenceStore, []string, []string, []string) {
	t.Helper()
	sharded := NewWithShards(shards)
	oracle := newReferenceStore()
	var acctIDs, postIDs, pageIDs []string
	for i := 0; i < accounts; i++ {
		g := sharded.CreateAccount(fmt.Sprintf("acct-%d", i), "IN", batchEpoch)
		w := oracle.CreateAccount(fmt.Sprintf("acct-%d", i), "IN", batchEpoch)
		if g.ID != w.ID {
			t.Fatalf("minted account IDs diverge: %s vs %s", g.ID, w.ID)
		}
		acctIDs = append(acctIDs, g.ID)
	}
	for i := 0; i < posts; i++ {
		meta := WriteMeta{At: batchEpoch}
		g, gerr := sharded.CreatePost(acctIDs[i%len(acctIDs)], "p", meta)
		w, werr := oracle.CreatePost(acctIDs[i%len(acctIDs)], "p", meta)
		if gerr != nil || werr != nil {
			t.Fatalf("CreatePost: %v / %v", gerr, werr)
		}
		if g.ID != w.ID {
			t.Fatalf("minted post IDs diverge: %s vs %s", g.ID, w.ID)
		}
		postIDs = append(postIDs, g.ID)
	}
	for i := 0; i < pages; i++ {
		g, gerr := sharded.CreatePage(acctIDs[0], fmt.Sprintf("page-%d", i), batchEpoch)
		w, werr := oracle.CreatePage(acctIDs[0], fmt.Sprintf("page-%d", i), batchEpoch)
		if gerr != nil || werr != nil {
			t.Fatalf("CreatePage: %v / %v", gerr, werr)
		}
		if g.ID != w.ID {
			t.Fatalf("minted page IDs diverge: %s vs %s", g.ID, w.ID)
		}
		pageIDs = append(pageIDs, g.ID)
	}
	// Suspend the last account after content creation so it is never an
	// author, only a (rejected) liker.
	if accounts > 1 {
		last := acctIDs[len(acctIDs)-1]
		if err := sharded.SetSuspended(last, true); err != nil {
			t.Fatal(err)
		}
		if err := oracle.SetSuspended(last, true); err != nil {
			t.Fatal(err)
		}
	}
	return sharded, oracle, acctIDs, postIDs, pageIDs
}

// replayBatch applies the batch to the sharded store in one call and to
// the oracle as sequential AddLikes, requiring identical per-op errors.
func replayBatch(t *testing.T, sharded *Store, oracle *referenceStore, batch []LikeOp) {
	t.Helper()
	gerrs := sharded.AddLikeBatch(batch)
	if len(gerrs) != len(batch) {
		t.Fatalf("AddLikeBatch returned %d errors for %d ops", len(gerrs), len(batch))
	}
	for j, op := range batch {
		werr := oracle.AddLike(op.AccountID, op.ObjectID, op.Meta)
		if !sameErr(gerrs[j], werr) {
			t.Fatalf("op %d (%s likes %s): batch err %v, sequential oracle %v",
				j, op.AccountID, op.ObjectID, gerrs[j], werr)
		}
	}
}

// TestAddLikeBatchMatchesSequential interleaves objects that land on
// different stripes so the batch splits into several runs, and includes
// every error class: duplicates (pre-existing and intra-batch), a
// suspended liker, an unknown liker, and an unknown object.
func TestAddLikeBatchMatchesSequential(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sharded, oracle, accts, posts, pages := batchWorld(t, shards, 6, 8, 2)
			meta := func(i int) WriteMeta {
				return WriteMeta{AppID: "app-1", SourceIP: "203.0.113.9", At: batchEpoch.Add(time.Duration(i) * time.Second)}
			}
			suspended := accts[len(accts)-1]
			// Seed one pre-existing like so the batch hits ErrAlreadyLiked
			// across the batch boundary too.
			if err := sharded.AddLike(accts[0], posts[0], meta(0)); err != nil {
				t.Fatal(err)
			}
			if err := oracle.AddLike(accts[0], posts[0], meta(0)); err != nil {
				t.Fatal(err)
			}
			var batch []LikeOp
			for i := 0; i < 40; i++ {
				batch = append(batch, LikeOp{
					AccountID: accts[i%4],
					ObjectID:  posts[i%len(posts)], // cycles objects → many runs
					Meta:      meta(i + 1),
				})
			}
			batch = append(batch,
				LikeOp{AccountID: accts[0], ObjectID: posts[0], Meta: meta(50)},    // duplicate of the seeded like
				LikeOp{AccountID: accts[1], ObjectID: pages[0], Meta: meta(51)},    // page like
				LikeOp{AccountID: accts[1], ObjectID: pages[0], Meta: meta(52)},    // intra-batch duplicate
				LikeOp{AccountID: accts[2], ObjectID: accts[3], Meta: meta(53)},    // profile like
				LikeOp{AccountID: suspended, ObjectID: posts[1], Meta: meta(54)},   // suspended liker
				LikeOp{AccountID: "nobody", ObjectID: posts[2], Meta: meta(55)},    // unknown liker
				LikeOp{AccountID: accts[3], ObjectID: "no-object", Meta: meta(56)}, // unknown object
			)
			replayBatch(t, sharded, oracle, batch)
			objects := append(append(append([]string{}, posts...), pages...), accts...)
			for _, obj := range objects {
				compareLikeCrawl(t, sharded, oracle, obj)
			}
			for _, acct := range accts {
				compareActivities(t, acct, sharded.ActivityLog(acct), oracle.ActivityLog(acct))
			}
		})
	}
}

// TestAddLikeBatchEmpty pins the degenerate shapes.
func TestAddLikeBatchEmpty(t *testing.T) {
	s := NewWithShards(4)
	if errs := s.AddLikeBatch(nil); len(errs) != 0 {
		t.Fatalf("AddLikeBatch(nil) = %d errors", len(errs))
	}
	if errs := s.AddLikeBatch([]LikeOp{}); len(errs) != 0 {
		t.Fatalf("AddLikeBatch(empty) = %d errors", len(errs))
	}
	errs := s.AddLikeBatch([]LikeOp{{AccountID: "ghost", ObjectID: "ghost-post"}})
	if len(errs) != 1 || !errors.Is(errs[0], ErrNotFound) {
		t.Fatalf("AddLikeBatch(unknown) = %v", errs)
	}
}

// TestApplyLikeRunLockScope exercises the batch lock scope directly:
// duplicate stripes across the object and the run's likers must collapse
// into one ascending acquisition pass (counted via the contention
// counters), and every stripe must be released on exit.
func TestApplyLikeRunLockScope(t *testing.T) {
	s := NewWithShards(8)
	run := []LikeOp{
		{AccountID: "liker-a", ObjectID: "obj-x"},
		{AccountID: "liker-b", ObjectID: "obj-x"},
		{AccountID: "liker-a", ObjectID: "obj-x"}, // duplicate stripe
	}
	objIdx := s.shardIndex("obj-x")
	want := map[int]bool{objIdx: true}
	for _, op := range run {
		want[s.shardIndex(op.AccountID)] = true
	}
	errs := make([]error, len(run))
	acqBefore, _ := s.Contention().Totals()
	s.applyLikeRun(run, errs, objIdx)
	acqAfter, _ := s.Contention().Totals()
	if got := acqAfter - acqBefore; got != int64(len(want)) {
		t.Fatalf("applyLikeRun acquired %d stripes, want %d (dedup)", got, len(want))
	}
	for _, err := range errs {
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("applyLikeRun on unknown likers = %v, want ErrNotFound", err)
		}
	}
	// Every stripe must be free again: a full relock would deadlock
	// otherwise.
	for i := 0; i < s.ShardCount(); i++ {
		sh := s.lockIdx(i)
		sh.mu.Unlock()
	}
}

// FuzzAddLikeBatchGrouping derives a like batch from arbitrary bytes —
// each byte selects a (liker, object) pair, covering repeated likers,
// repeated objects, bogus IDs, profile/page targets, and a suspended
// account — and checks the batch→shard-run grouping against a sequential
// AddLike replay on the single-lock reference store: identical per-op
// errors and identical final crawl state, for shard counts from 1 to 128.
func FuzzAddLikeBatchGrouping(f *testing.F) {
	f.Add([]byte{}, uint8(2))
	f.Add([]byte{0x00, 0x11, 0x22, 0x33, 0xff}, uint8(0))
	f.Add([]byte{0x07, 0x07, 0x07, 0x70, 0x71, 0xa5}, uint8(6))
	f.Add([]byte{0xfe, 0xdc, 0xba, 0x98, 0x76, 0x54, 0x32, 0x10}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, shardSel uint8) {
		if len(data) > 256 {
			data = data[:256]
		}
		shards := 1 << (shardSel % 8) // 1..128
		sharded, oracle, accts, posts, pages := batchWorld(t, shards, 8, 6, 2)
		batch := make([]LikeOp, 0, len(data))
		for i, b := range data {
			liker := "bogus-liker"
			if li := int(b & 0x0f); li < len(accts) {
				liker = accts[li]
			}
			var object string
			switch sel := int(b >> 4); {
			case sel < 6:
				object = posts[sel]
			case sel < 8:
				object = pages[sel-6]
			case sel < 12:
				object = accts[sel-8] // profile like
			default:
				object = fmt.Sprintf("bogus-object-%d", sel)
			}
			batch = append(batch, LikeOp{
				AccountID: liker,
				ObjectID:  object,
				Meta:      WriteMeta{AppID: "app-f", SourceIP: "203.0.113.77", At: batchEpoch.Add(time.Duration(i) * time.Second)},
			})
		}
		replayBatch(t, sharded, oracle, batch)
		objects := append(append(append([]string{}, posts...), pages...), accts...)
		for _, obj := range objects {
			compareLikeCrawl(t, sharded, oracle, obj)
		}
		for _, acct := range accts {
			compareActivities(t, acct, sharded.ActivityLog(acct), oracle.ActivityLog(acct))
		}
	})
}
