// Differential test across the retention boundary and the defense stack:
// an eviction-enabled sharded store (finite window, periodic sweeps) and a
// reference store that retains everything are driven with the same
// scenario whose activity all falls inside the window. The sweeps must
// evict nothing, the like crawls must stay identical, and — the property
// the mitigation pipeline depends on — SynchroTrap clustering fed from
// either store must return bit-for-bit identical verdicts.
//
// This lives in the external test package because defense imports
// socialgraph (purge.go): an internal test importing defense would be an
// import cycle.
package socialgraph_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/defense"
	"repro/internal/socialgraph"
)

func TestRetentionPreservesSynchroTrapVerdicts(t *testing.T) {
	const (
		window     = 24 * time.Hour
		colluders  = 25
		organics   = 35
		posts      = 6
		trapWindow = 30 * time.Minute
	)
	epoch := time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

	swept := socialgraph.NewWithShards(8)
	swept.SetRetentionWindow(window)
	oracle := socialgraph.NewTestReferenceStore() // infinite retention, never swept

	stores := []socialgraph.GraphStore{swept, oracle}
	var accounts [2][]string
	var postIDs [2][]string
	for si, st := range stores {
		for i := 0; i < colluders+organics; i++ {
			a := st.CreateAccount(fmt.Sprintf("acct-%d", i), "IN", epoch)
			accounts[si] = append(accounts[si], a.ID)
		}
		for i := 0; i < posts; i++ {
			p, err := st.CreatePost(accounts[si][0], fmt.Sprintf("post %d", i), socialgraph.WriteMeta{At: epoch})
			if err != nil {
				t.Fatal(err)
			}
			postIDs[si] = append(postIDs[si], p.ID)
		}
	}

	// One like burst per post, an hour apart: the colluders hit the post
	// within two minutes (same SynchroTrap bucket, every burst), the
	// organic accounts trickle in at scattered offsets.
	for pi := 0; pi < posts; pi++ {
		burst := epoch.Add(time.Duration(pi) * time.Hour)
		for si, st := range stores {
			for c := 0; c < colluders; c++ {
				at := burst.Add(time.Duration(c) * 2 * time.Second)
				if err := st.AddLike(accounts[si][c], postIDs[si][pi], socialgraph.WriteMeta{At: at}); err != nil {
					t.Fatal(err)
				}
			}
			for o := 0; o < organics; o++ {
				if (o+pi)%3 != 0 { // only some organics like each post
					continue
				}
				at := burst.Add(time.Duration(1+o*13%50) * time.Minute)
				if err := st.AddLike(accounts[si][colluders+o], postIDs[si][pi], socialgraph.WriteMeta{At: at}); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Sweep the eviction-enabled store every burst. All activity is
		// within the 24h window, so nothing may go.
		if res := swept.RetentionSweep(burst.Add(time.Hour)); res.Total() != 0 {
			t.Fatalf("sweep at burst %d evicted %+v inside the window", pi, res)
		}
	}

	// The crawls the defense layer feeds from must be identical.
	for pi := range postIDs[0] {
		gl, wl := swept.Likes(postIDs[0][pi]), oracle.Likes(postIDs[1][pi])
		if len(gl) != len(wl) {
			t.Fatalf("post %d: %d likes vs %d retained", pi, len(gl), len(wl))
		}
		for i := range gl {
			if gl[i] != wl[i] {
				t.Fatalf("post %d like %d: %+v vs %+v", pi, i, gl[i], wl[i])
			}
		}
	}
	if g, w := swept.RetainedEdges(), oracle.RetainedEdges(); g != w {
		t.Fatalf("RetainedEdges = %+v, oracle %+v", g, w)
	}

	// Identical clustering verdicts, bit for bit.
	verdicts := make([][]defense.Cluster, 2)
	for si, st := range stores {
		trap := defense.NewSynchroTrap(trapWindow, 0.5, 2, 5)
		for _, pid := range postIDs[si] {
			for _, l := range st.Likes(pid) {
				trap.Record(l.AccountID, pid, l.At)
			}
		}
		verdicts[si] = trap.Detect()
	}
	if len(verdicts[0]) == 0 {
		t.Fatal("SynchroTrap detected no clusters; the differential would pass vacuously")
	}
	if !reflect.DeepEqual(verdicts[0], verdicts[1]) {
		t.Fatalf("verdicts diverge:\n  swept:  %+v\n  oracle: %+v", verdicts[0], verdicts[1])
	}
	// The colluding ring must actually be the verdict.
	if got := len(verdicts[0][0].Accounts); got != colluders {
		t.Fatalf("largest cluster has %d accounts, want the %d colluders", got, colluders)
	}
}
