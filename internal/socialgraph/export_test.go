package socialgraph

// Test-only exports. The defense-facing differential tests live in the
// external socialgraph_test package (defense imports socialgraph, so an
// internal test would be an import cycle); they need the oracle and the
// shared operation surface the internal differential harness uses.

// GraphStore is the differential operation surface (see differential_test.go).
type GraphStore = graphStore

// NewTestReferenceStore exposes the single-lock oracle to external test
// packages.
func NewTestReferenceStore() GraphStore { return newReferenceStore() }
