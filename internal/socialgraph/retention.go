package socialgraph

import (
	"time"

	"repro/internal/metrics"
)

// Edge-history retention. Multi-year open-loop runs accumulate likes,
// comments, and activity-log entries without bound; the defenses only
// ever analyse a bounded trailing window (SynchroTrap's similarity
// window, the rate limiters' day/week buckets, the honeypots' campaign
// horizon), so edge history older than a configurable analytics window
// may be aged out. Eviction is strictly scoped to edge history: accounts,
// pages, and posts are never deleted, so the existence-is-stable argument
// that lets cross-shard writes validate without global atomicity (see
// DESIGN.md §6) is preserved. Sweeps lock one stripe at a time — the
// store is never globally frozen.

// SetRetentionWindow configures the analytics window. Edge history whose
// timestamp falls more than w before the sweep instant is evicted by
// RetentionSweep. w <= 0 restores the default infinite retention.
func (s *Store) SetRetentionWindow(w time.Duration) {
	if w < 0 {
		w = 0
	}
	s.retentionNanos.Store(int64(w))
}

// RetentionWindow returns the configured analytics window (0 = infinite).
func (s *Store) RetentionWindow() time.Duration {
	return time.Duration(s.retentionNanos.Load())
}

// Retention returns the store's eviction counters. They are exported via
// /metrics by the platform's scrape-time collectors.
func (s *Store) Retention() *metrics.RetentionCounters { return s.retention }

// SweepResult reports how many edges one RetentionSweep evicted.
type SweepResult struct {
	Likes      int64
	Comments   int64
	Activities int64
}

// Total returns the number of evicted edges across all classes.
func (r SweepResult) Total() int64 { return r.Likes + r.Comments + r.Activities }

// RetentionSweep evicts all edge history older than now minus the
// configured window and returns what was evicted. With an infinite
// window (the default) it is a no-op and records nothing. Shards are
// swept one at a time under their own write lock, so concurrent traffic
// proceeds on every other stripe.
func (s *Store) RetentionSweep(now time.Time) SweepResult {
	w := s.RetentionWindow()
	if w <= 0 {
		return SweepResult{}
	}
	cutoff := now.Add(-w)
	var res SweepResult
	for i := range s.shards {
		sh := s.lockIdx(i)
		likes, comments, activities := sh.evictBefore(cutoff)
		sh.mu.Unlock()
		res.Likes += likes
		res.Comments += comments
		res.Activities += activities
	}
	s.retention.RecordSweep(res.Likes, res.Comments, res.Activities)
	return res
}

// evictBefore drops this stripe's likes, comments, and activity entries
// with At strictly before cutoff. Timestamps within an object's history
// are not necessarily monotone (organic workloads scatter At within a
// day), so eviction filters by value rather than trimming a prefix.
// Survivors compact in place and whole evicted chunks return to the
// shard pools (see chunkList.filter) — the sweep itself allocates
// nothing, and it is what refills the free lists that keep steady-state
// writes allocation-free. The caller must hold the shard's write lock.
//
//collusionvet:locked
func (sh *shard) evictBefore(cutoff time.Time) (likes, comments, activities int64) {
	for obj, h := range sh.likes {
		set := h.set
		likes += int64(h.order.filter(&sh.edges, func(ref *edgeRef) bool {
			if l, ok := set[ref.id]; ok && l.At.Before(cutoff) {
				delete(set, ref.id)
				return false
			}
			return true
		}))
		if h.order.total == 0 {
			sh.retireLikeHistory(obj, h)
		}
	}
	for post, l := range sh.commentOrder {
		comments += int64(l.filter(&sh.edges, func(ref *edgeRef) bool {
			if c, ok := sh.comments[ref.id]; ok && c.At.Before(cutoff) {
				delete(sh.comments, ref.id)
				sh.retireComment(c)
				return false
			}
			return true
		}))
		if l.total == 0 {
			// filter already released the chunks; pool the header too.
			sh.freeEdgeList = append(sh.freeEdgeList, l)
			delete(sh.commentOrder, post)
		}
	}
	for acct, l := range sh.activity {
		activities += int64(l.filter(&sh.acts, func(a *Activity) bool {
			return !a.At.Before(cutoff)
		}))
		if l.total == 0 {
			sh.freeActList = append(sh.freeActList, l)
			delete(sh.activity, acct)
		}
	}
	return likes, comments, activities
}

// EdgeStats counts the retained edge history, composed from per-shard
// snapshots. The difference between cumulative writes and these gauges
// is what retention has reclaimed — the memory-plateau signal.
type EdgeStats struct {
	Likes      int64
	Comments   int64
	Activities int64
}

// RetainedEdges returns the currently retained edge-history counts.
func (s *Store) RetainedEdges() EdgeStats {
	var st EdgeStats
	for i := range s.shards {
		sh := s.rlockIdx(i)
		for _, h := range sh.likes {
			st.Likes += int64(len(h.set))
		}
		st.Comments += int64(len(sh.comments))
		for _, l := range sh.activity {
			st.Activities += int64(l.total)
		}
		sh.mu.RUnlock()
	}
	return st
}

// LikesPage returns up to limit retained likes on objectID whose arrival
// sequence is at least after, in arrival order, along with the cursor for
// the next page and whether more likes remain. limit <= 0 means no limit.
// Sequences are assigned at like time and never reused (see edgeRef), so
// a cursor taken before a retention sweep or a like purge still denotes
// the same position afterwards: evicted likes silently drop out of the
// page, later likes keep their places.
func (s *Store) LikesPage(objectID string, after, limit int) (page []Like, next int, more bool) {
	sh := s.rlock(objectID)
	defer sh.mu.RUnlock()
	h, ok := sh.likes[objectID]
	if !ok {
		return nil, 0, false
	}
	// searchEdges skips whole chunks below the cursor (sequences are
	// strictly ascending across the list), then the page walks entries by
	// absolute position — the same position-window semantics the flat
	// slice had.
	c, i, pos := searchEdges(&h.order, after)
	end := h.order.total
	if limit > 0 && pos+limit < end {
		end = pos + limit
	}
	for c != nil && pos < end {
		for i < c.n && pos < end {
			if l, ok := h.set[c.buf[i].id]; ok {
				page = append(page, l)
			}
			pos++
			i++
		}
		if i == c.n {
			c, i = c.next, 0
		}
	}
	if pos < h.order.total {
		// c/i rest on the first entry past the page (chunks are never
		// empty, so a chunk-boundary stop landed on a real entry).
		return page, c.buf[i].seq, true
	}
	return page, 0, false
}

// CommentsPage returns up to limit retained comments on postID whose
// arrival sequence is at least after, in creation order, along with the
// cursor for the next page and whether more remain. limit <= 0 means no
// limit. Cursor semantics match LikesPage.
func (s *Store) CommentsPage(postID string, after, limit int) (page []Comment, next int, more bool) {
	sh := s.rlock(postID)
	defer sh.mu.RUnlock()
	l, ok := sh.commentOrder[postID]
	if !ok {
		return nil, 0, false
	}
	c, i, pos := searchEdges(l, after)
	end := l.total
	if limit > 0 && pos+limit < end {
		end = pos + limit
	}
	for c != nil && pos < end {
		for i < c.n && pos < end {
			if rec, ok := sh.comments[c.buf[i].id]; ok {
				page = append(page, *rec)
			}
			pos++
			i++
		}
		if i == c.n {
			c, i = c.next, 0
		}
	}
	if pos < l.total {
		return page, c.buf[i].seq, true
	}
	return page, 0, false
}
