package oauthsim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/apps"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

var t0 = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

type fixture struct {
	clock *simclock.Simulated
	reg   *apps.Registry
	graph *socialgraph.Store
	srv   *Server
	app   apps.App
	user  socialgraph.Account
}

func newFixture(t *testing.T, cfg apps.Config) *fixture {
	t.Helper()
	clock := simclock.NewSimulated(t0)
	reg := apps.NewRegistry()
	graph := socialgraph.New()
	if cfg.Name == "" {
		cfg = apps.Config{
			Name:              "HTC Sense",
			RedirectURI:       "https://htc.example/callback",
			ClientFlowEnabled: true,
			Lifetime:          apps.LongTerm,
			Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
		}
	}
	app := reg.Register(cfg)
	user := graph.CreateAccount("member", "IN", t0)
	return &fixture{
		clock: clock,
		reg:   reg,
		graph: graph,
		srv:   NewServer(clock, reg, graph),
		app:   app,
		user:  user,
	}
}

func (f *fixture) authorizeReq(rt ResponseType) AuthorizeRequest {
	return AuthorizeRequest{
		AppID:        f.app.ID,
		RedirectURI:  f.app.RedirectURI,
		ResponseType: rt,
		Scopes:       []string{apps.PermPublishActions},
		AccountID:    f.user.ID,
	}
}

func TestImplicitFlowIssuesToken(t *testing.T) {
	f := newFixture(t, apps.Config{})
	res, err := f.srv.Authorize(f.authorizeReq(ResponseToken))
	if err != nil {
		t.Fatal(err)
	}
	if res.AccessToken == "" || res.Code != "" {
		t.Fatalf("implicit result = %+v", res)
	}
	wantExpiry := int64(apps.LongTermDuration / time.Second)
	if res.ExpiresIn != wantExpiry {
		t.Fatalf("ExpiresIn = %d, want %d", res.ExpiresIn, wantExpiry)
	}
	info, err := f.srv.Validate(res.AccessToken)
	if err != nil {
		t.Fatal(err)
	}
	if info.AccountID != f.user.ID || info.AppID != f.app.ID {
		t.Fatalf("TokenInfo = %+v", info)
	}
	if !info.HasScope(apps.PermPublishActions) {
		t.Fatal("token missing publish_actions scope")
	}
	if info.HasScope(apps.PermEmail) {
		t.Fatal("token has ungranted scope")
	}
}

func TestImplicitFlowRefusedWhenDisabled(t *testing.T) {
	f := newFixture(t, apps.Config{
		Name:              "Secure App",
		RedirectURI:       "https://secure.example/cb",
		ClientFlowEnabled: false,
		Permissions:       []string{apps.PermPublishActions},
	})
	_, err := f.srv.Authorize(f.authorizeReq(ResponseToken))
	if !errors.Is(err, ErrClientFlowDisabled) {
		t.Fatalf("err = %v, want ErrClientFlowDisabled", err)
	}
	// Server-side flow remains available.
	res, err := f.srv.Authorize(f.authorizeReq(ResponseCode))
	if err != nil || res.Code == "" {
		t.Fatalf("code flow = %+v, %v", res, err)
	}
}

func TestAuthorizeValidation(t *testing.T) {
	f := newFixture(t, apps.Config{})
	cases := []struct {
		name   string
		mutate func(*AuthorizeRequest)
		want   error
	}{
		{"unknown app", func(r *AuthorizeRequest) { r.AppID = "nope" }, ErrUnknownApp},
		{"redirect mismatch", func(r *AuthorizeRequest) { r.RedirectURI = "https://evil.example" }, ErrRedirectMismatch},
		{"unapproved scope", func(r *AuthorizeRequest) { r.Scopes = []string{apps.PermUserFriends} }, ErrScopeNotApproved},
		{"unknown account", func(r *AuthorizeRequest) { r.AccountID = "ghost" }, ErrUnknownAccount},
		{"bad response type", func(r *AuthorizeRequest) { r.ResponseType = "password" }, ErrBadResponseType},
	}
	for _, tc := range cases {
		req := f.authorizeReq(ResponseToken)
		tc.mutate(&req)
		if _, err := f.srv.Authorize(req); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestAuthorizeSuspendedAppAndAccount(t *testing.T) {
	f := newFixture(t, apps.Config{})
	if err := f.reg.SetSuspended(f.app.ID, true); err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.Authorize(f.authorizeReq(ResponseToken)); !errors.Is(err, ErrAppSuspended) {
		t.Fatalf("err = %v, want ErrAppSuspended", err)
	}
	_ = f.reg.SetSuspended(f.app.ID, false)
	_ = f.graph.SetSuspended(f.user.ID, true)
	if _, err := f.srv.Authorize(f.authorizeReq(ResponseToken)); !errors.Is(err, ErrAccountSuspended) {
		t.Fatalf("err = %v, want ErrAccountSuspended", err)
	}
}

func TestCodeFlowRoundTrip(t *testing.T) {
	f := newFixture(t, apps.Config{})
	res, err := f.srv.Authorize(f.authorizeReq(ResponseCode))
	if err != nil {
		t.Fatal(err)
	}
	if res.Code == "" || res.AccessToken != "" {
		t.Fatalf("code result = %+v", res)
	}
	info, err := f.srv.ExchangeCode(f.app.ID, f.app.Secret, f.app.RedirectURI, res.Code)
	if err != nil {
		t.Fatal(err)
	}
	if info.AccountID != f.user.ID {
		t.Fatalf("exchanged token account = %q", info.AccountID)
	}
	// Codes are single use.
	if _, err := f.srv.ExchangeCode(f.app.ID, f.app.Secret, f.app.RedirectURI, res.Code); !errors.Is(err, ErrInvalidCode) {
		t.Fatalf("code reuse err = %v, want ErrInvalidCode", err)
	}
}

func TestCodeFlowRejectsBadSecretAndRedirect(t *testing.T) {
	f := newFixture(t, apps.Config{})
	res, _ := f.srv.Authorize(f.authorizeReq(ResponseCode))
	if _, err := f.srv.ExchangeCode(f.app.ID, "wrong", f.app.RedirectURI, res.Code); !errors.Is(err, ErrBadSecret) {
		t.Fatalf("bad secret err = %v", err)
	}
	if _, err := f.srv.ExchangeCode(f.app.ID, f.app.Secret, "https://evil.example", res.Code); !errors.Is(err, ErrInvalidCode) {
		t.Fatalf("bad redirect err = %v", err)
	}
	if _, err := f.srv.ExchangeCode("ghost", "x", f.app.RedirectURI, res.Code); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("unknown app err = %v", err)
	}
}

func TestCodeExpires(t *testing.T) {
	f := newFixture(t, apps.Config{})
	res, _ := f.srv.Authorize(f.authorizeReq(ResponseCode))
	f.clock.Advance(11 * time.Minute)
	if _, err := f.srv.ExchangeCode(f.app.ID, f.app.Secret, f.app.RedirectURI, res.Code); !errors.Is(err, ErrInvalidCode) {
		t.Fatalf("expired code err = %v", err)
	}
}

func TestTokenExpiry(t *testing.T) {
	short := apps.Config{
		Name:              "Short",
		RedirectURI:       "https://short.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.ShortTerm,
		Permissions:       []string{apps.PermPublishActions},
	}
	f := newFixture(t, short)
	res, err := f.srv.Authorize(f.authorizeReq(ResponseToken))
	if err != nil {
		t.Fatal(err)
	}
	f.clock.Advance(time.Hour)
	if _, err := f.srv.Validate(res.AccessToken); err != nil {
		t.Fatalf("token invalid before expiry: %v", err)
	}
	f.clock.Advance(time.Hour)
	if _, err := f.srv.Validate(res.AccessToken); !errors.Is(err, ErrTokenExpired) {
		t.Fatalf("expired token err = %v", err)
	}
}

func TestInvalidate(t *testing.T) {
	f := newFixture(t, apps.Config{})
	res, _ := f.srv.Authorize(f.authorizeReq(ResponseToken))
	if !f.srv.Invalidate(res.AccessToken, "honeypot-milked") {
		t.Fatal("Invalidate returned false for live token")
	}
	_, err := f.srv.Validate(res.AccessToken)
	if !errors.Is(err, ErrTokenInvalidated) {
		t.Fatalf("err = %v, want ErrTokenInvalidated", err)
	}
	if f.srv.Invalidate(res.AccessToken, "again") {
		t.Fatal("double invalidation returned true")
	}
	if f.srv.Invalidate("ghost-token", "x") {
		t.Fatal("invalidating unknown token returned true")
	}
	if _, err := f.srv.Validate("ghost-token"); !errors.Is(err, ErrTokenNotFound) {
		t.Fatalf("unknown token err = %v", err)
	}
}

func TestInvalidateAccount(t *testing.T) {
	f := newFixture(t, apps.Config{})
	var toks []string
	for i := 0; i < 3; i++ {
		res, err := f.srv.Authorize(f.authorizeReq(ResponseToken))
		if err != nil {
			t.Fatal(err)
		}
		toks = append(toks, res.AccessToken)
	}
	if n := f.srv.InvalidateAccount(f.user.ID, "sweep"); n != 3 {
		t.Fatalf("InvalidateAccount = %d, want 3", n)
	}
	for _, tok := range toks {
		if _, err := f.srv.Validate(tok); !errors.Is(err, ErrTokenInvalidated) {
			t.Fatalf("token %q err = %v", tok, err)
		}
	}
	if n := f.srv.InvalidateAccount(f.user.ID, "sweep"); n != 0 {
		t.Fatalf("second sweep revoked %d", n)
	}
}

func TestSecretProof(t *testing.T) {
	f := newFixture(t, apps.Config{})
	res, _ := f.srv.Authorize(f.authorizeReq(ResponseToken))
	info, _ := f.srv.Validate(res.AccessToken)

	// App does not require the secret: empty proof passes, wrong proof fails.
	if err := f.srv.VerifySecretProof(info, ""); err != nil {
		t.Fatalf("empty proof err = %v", err)
	}
	if err := f.srv.VerifySecretProof(info, "deadbeef"); !errors.Is(err, ErrBadSecretProof) {
		t.Fatalf("bad proof err = %v", err)
	}
	good := SecretProof(f.app.Secret, info.Token)
	if err := f.srv.VerifySecretProof(info, good); err != nil {
		t.Fatalf("good proof err = %v", err)
	}

	// Flip the requirement: empty proof now fails.
	if err := f.reg.SetSecuritySettings(f.app.ID, true, true); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.VerifySecretProof(info, ""); !errors.Is(err, ErrSecretProofRequired) {
		t.Fatalf("required proof err = %v", err)
	}
	if err := f.srv.VerifySecretProof(info, good); err != nil {
		t.Fatalf("good proof with requirement err = %v", err)
	}
}

func TestLiveTokenCount(t *testing.T) {
	f := newFixture(t, apps.Config{})
	for i := 0; i < 5; i++ {
		_, _ = f.srv.Authorize(f.authorizeReq(ResponseToken))
	}
	if n := f.srv.LiveTokenCount(); n != 5 {
		t.Fatalf("LiveTokenCount = %d, want 5", n)
	}
	f.srv.InvalidateAccount(f.user.ID, "sweep")
	if n := f.srv.LiveTokenCount(); n != 0 {
		t.Fatalf("LiveTokenCount after sweep = %d, want 0", n)
	}
}

// Property: a token issued via the implicit flow validates immediately and
// carries exactly the requested scopes.
func TestQuickIssuedTokenValidates(t *testing.T) {
	f := newFixture(t, apps.Config{})
	allScopes := []string{apps.PermPublicProfile, apps.PermPublishActions}
	check := func(scopeMask uint8) bool {
		var scopes []string
		for i, s := range allScopes {
			if scopeMask&(1<<i) != 0 {
				scopes = append(scopes, s)
			}
		}
		req := f.authorizeReq(ResponseToken)
		req.Scopes = scopes
		res, err := f.srv.Authorize(req)
		if err != nil {
			return false
		}
		info, err := f.srv.Validate(res.AccessToken)
		if err != nil {
			return false
		}
		if len(info.Scopes) != len(scopes) {
			return false
		}
		for _, s := range scopes {
			if !info.HasScope(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
