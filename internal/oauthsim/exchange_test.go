package oauthsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/apps"
)

func shortTermFixture(t *testing.T) *fixture {
	t.Helper()
	return newFixture(t, apps.Config{
		Name:              "Short App",
		RedirectURI:       "https://short.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.ShortTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
}

func TestExchangeForLongLived(t *testing.T) {
	f := shortTermFixture(t)
	res, err := f.srv.Authorize(f.authorizeReq(ResponseToken))
	if err != nil {
		t.Fatal(err)
	}
	long, err := f.srv.ExchangeForLongLived(f.app.ID, f.app.Secret, res.AccessToken)
	if err != nil {
		t.Fatal(err)
	}
	if long.Token == res.AccessToken {
		t.Fatal("exchange returned the same token")
	}
	if got := long.ExpiresAt.Sub(long.IssuedAt); got != apps.LongTermDuration {
		t.Fatalf("long-lived duration = %v", got)
	}
	if long.AccountID != f.user.ID || !long.HasScope(apps.PermPublishActions) {
		t.Fatalf("long token = %+v", long)
	}
	// The original short token is unaffected until its own expiry.
	if _, err := f.srv.Validate(res.AccessToken); err != nil {
		t.Fatalf("original token invalidated: %v", err)
	}
	// After the short lifetime passes, the long-lived one still works.
	f.clock.Advance(3 * time.Hour)
	if _, err := f.srv.Validate(res.AccessToken); !errors.Is(err, ErrTokenExpired) {
		t.Fatalf("short token err = %v", err)
	}
	if _, err := f.srv.Validate(long.Token); err != nil {
		t.Fatalf("long token err = %v", err)
	}
}

func TestExchangeForLongLivedRequiresSecret(t *testing.T) {
	f := shortTermFixture(t)
	res, _ := f.srv.Authorize(f.authorizeReq(ResponseToken))
	// The attacker holding only the leaked token cannot extend it.
	if _, err := f.srv.ExchangeForLongLived(f.app.ID, "guessed-secret", res.AccessToken); !errors.Is(err, ErrBadSecret) {
		t.Fatalf("bad secret err = %v", err)
	}
}

func TestExchangeForLongLivedValidation(t *testing.T) {
	f := shortTermFixture(t)
	res, _ := f.srv.Authorize(f.authorizeReq(ResponseToken))
	if _, err := f.srv.ExchangeForLongLived("ghost-app", "x", res.AccessToken); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("unknown app err = %v", err)
	}
	if _, err := f.srv.ExchangeForLongLived(f.app.ID, f.app.Secret, "bogus"); !errors.Is(err, ErrTokenNotFound) {
		t.Fatalf("bogus token err = %v", err)
	}
	// A token of a different app cannot be extended with this app's secret.
	other := f.reg.Register(apps.Config{
		Name:              "Other",
		RedirectURI:       "https://other.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.ShortTerm,
		Permissions:       []string{apps.PermPublicProfile},
	})
	otherRes, err := f.srv.Authorize(AuthorizeRequest{
		AppID:        other.ID,
		RedirectURI:  other.RedirectURI,
		ResponseType: ResponseToken,
		Scopes:       []string{apps.PermPublicProfile},
		AccountID:    f.user.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.ExchangeForLongLived(f.app.ID, f.app.Secret, otherRes.AccessToken); !errors.Is(err, ErrTokenNotFound) {
		t.Fatalf("cross-app exchange err = %v", err)
	}
	// Invalidated tokens cannot be extended.
	f.srv.Invalidate(res.AccessToken, "swept")
	if _, err := f.srv.ExchangeForLongLived(f.app.ID, f.app.Secret, res.AccessToken); !errors.Is(err, ErrTokenInvalidated) {
		t.Fatalf("invalidated exchange err = %v", err)
	}
}

func TestInvalidateAccountCoversExchangedTokens(t *testing.T) {
	f := shortTermFixture(t)
	res, _ := f.srv.Authorize(f.authorizeReq(ResponseToken))
	long, err := f.srv.ExchangeForLongLived(f.app.ID, f.app.Secret, res.AccessToken)
	if err != nil {
		t.Fatal(err)
	}
	if n := f.srv.InvalidateAccount(f.user.ID, "sweep"); n != 2 {
		t.Fatalf("InvalidateAccount = %d, want 2 (short + long)", n)
	}
	if _, err := f.srv.Validate(long.Token); !errors.Is(err, ErrTokenInvalidated) {
		t.Fatalf("long token survived account sweep: %v", err)
	}
}
