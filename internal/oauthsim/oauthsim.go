// Package oauthsim implements the platform's OAuth 2.0 authorization
// server, modelled on Facebook's dialect of RFC 6749 as described in
// Section 2 of the paper.
//
// Two grant flows are supported:
//
//   - the implicit (client-side) flow, response_type=token: the access
//     token is returned in the redirect URI fragment, visible to the
//     browser — this is the flow collusion networks walk their members
//     through ("copy the token from the address bar");
//   - the authorization-code (server-side) flow, response_type=code: the
//     browser only sees a one-time code, which the application server
//     exchanges for a token by authenticating with the application secret.
//
// Token lifetimes follow the app's class (short-term 1–2 h, long-term
// ~2 months). Tokens can be invalidated out of band — the paper's central
// countermeasure (Sec. 6.2) — and validation reports *why* a token is
// rejected so experiments can distinguish expiry from invalidation.
package oauthsim

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/provider"
	"repro/internal/redact"
	"repro/internal/secrets"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

// Errors returned by the authorization server.
var (
	ErrUnknownApp          = errors.New("oauthsim: unknown application")
	ErrAppSuspended        = errors.New("oauthsim: application suspended")
	ErrRedirectMismatch    = errors.New("oauthsim: redirect_uri does not match application settings")
	ErrClientFlowDisabled  = errors.New("oauthsim: client-side flow disabled for application")
	ErrScopeNotApproved    = errors.New("oauthsim: requested scope not approved for application")
	ErrUnknownAccount      = errors.New("oauthsim: unknown account")
	ErrAccountSuspended    = errors.New("oauthsim: account suspended")
	ErrBadResponseType     = errors.New("oauthsim: unsupported response_type")
	ErrInvalidCode         = errors.New("oauthsim: invalid or expired authorization code")
	ErrBadSecret           = errors.New("oauthsim: application secret mismatch")
	ErrTokenNotFound       = errors.New("oauthsim: unknown access token")
	ErrTokenExpired        = errors.New("oauthsim: access token expired")
	ErrTokenInvalidated    = errors.New("oauthsim: access token invalidated")
	ErrBadSecretProof      = errors.New("oauthsim: invalid appsecret_proof")
	ErrSecretProofRequired = errors.New("oauthsim: appsecret_proof required")
	ErrFlowUnsupported     = errors.New("oauthsim: grant flow not offered by this provider")
)

// codeLifetime bounds how long an authorization code may sit unexchanged.
const codeLifetime = 10 * time.Minute

// ResponseType selects the OAuth grant flow.
type ResponseType string

// Supported response types.
const (
	ResponseToken ResponseType = "token" // implicit / client-side flow
	ResponseCode  ResponseType = "code"  // authorization-code / server-side flow
)

// TokenInfo is the server-side record of an issued access token.
type TokenInfo struct {
	Token     string
	AccountID string
	AppID     string
	// Scopes is built once at issuance and read-only thereafter; Validate
	// hands the same backing array to every caller. Callers must not
	// mutate it — the copy-per-validation this replaces was a third of
	// the like pipeline's allocation count.
	Scopes    []string
	IssuedAt  time.Time
	ExpiresAt time.Time
	// Invalidated is non-zero when the token was administratively revoked;
	// Reason records the countermeasure responsible.
	Invalidated   bool
	InvalidReason string

	// invalidErr is the preformatted Validate error for a revoked token,
	// built once at invalidation so the (very hot, post-intervention)
	// invalidated-token denial allocates nothing per call.
	invalidErr error
}

// HasScope reports whether the token grants the permission.
func (t TokenInfo) HasScope(scope string) bool {
	for _, s := range t.Scopes {
		if s == scope {
			return true
		}
	}
	return false
}

// AuthorizeRequest is a user's arrival at the authorization dialog, already
// authenticated as AccountID (the platform knows who is logged in).
type AuthorizeRequest struct {
	AppID        string
	RedirectURI  string
	ResponseType ResponseType
	Scopes       []string
	AccountID    string
	// State is the client's opaque CSRF token (RFC 6749 §10.12); it is
	// echoed back verbatim on the redirect. Its absence in real
	// integrations was one of the OAuth weaknesses the related work
	// (Shernan et al.) catalogued.
	State string
}

// AuthorizeResult carries the artifact delivered on the redirect URI:
// either an access token (implicit flow) or an authorization code.
type AuthorizeResult struct {
	// AccessToken is set for the implicit flow. This is the value that
	// appears in the URL fragment and that collusion network members copy
	// out of the address bar.
	AccessToken string
	// Code is set for the server-side flow.
	Code string
	// ExpiresIn is the token lifetime in seconds (implicit flow only).
	ExpiresIn int64
	// State echoes the request's CSRF token.
	State string
}

type authCode struct {
	code      string
	appID     string
	accountID string
	scopes    []string
	redirect  string
	expiresAt time.Time
}

// Server is the authorization server. It is safe for concurrent use.
type Server struct {
	clock simclock.Clock
	prov  provider.Provider
	apps  *apps.Registry
	graph *socialgraph.Store

	mu     sync.RWMutex
	tokens map[string]*TokenInfo
	// byAccount indexes live token strings per account for bulk
	// invalidation (Sec. 6.2 invalidates all tokens of milked accounts).
	byAccount map[string]map[string]bool
	codes     map[string]authCode

	// Telemetry, wired by SetObserver; nil-safe no-ops until then.
	obs         *obs.Observer
	issued      *obs.CounterVec // oauth_tokens_issued_total{app}
	invalidated *obs.CounterVec // oauth_tokens_invalidated_total{reason}
}

// NewServer returns an authorization server for the default provider,
// bound to the app registry and account store.
func NewServer(clock simclock.Clock, registry *apps.Registry, graph *socialgraph.Store) *Server {
	return NewServerFor(provider.Default(), clock, registry, graph)
}

// NewServerFor returns an authorization server speaking the given
// provider's dialect: its token wire format and its grant-flow menu
// (a provider without the implicit flow refuses response_type=token
// outright, regardless of per-app settings).
func NewServerFor(prov provider.Provider, clock simclock.Clock, registry *apps.Registry, graph *socialgraph.Store) *Server {
	return &Server{
		clock:     clock,
		prov:      prov,
		apps:      registry,
		graph:     graph,
		tokens:    make(map[string]*TokenInfo),
		byAccount: make(map[string]map[string]bool),
		codes:     make(map[string]authCode),
	}
}

// Provider returns the platform identity this server speaks for.
func (s *Server) Provider() provider.Provider { return s.prov }

// SetObserver wires telemetry: token grant/revocation counters and a span
// per issued token (the root of the oauth → graphapi trace when issuance
// itself is what's being followed).
func (s *Server) SetObserver(o *obs.Observer) {
	s.obs = o
	s.issued = o.M().Counter("oauth_tokens_issued_total",
		"Access tokens issued, by application.", "app")
	s.invalidated = o.M().Counter("oauth_tokens_invalidated_total",
		"Access tokens administratively revoked, by reason.", "reason")
}

// Authorize processes an authorization-dialog approval and returns the
// redirect artifact. It enforces the application's security settings: the
// implicit flow is refused when ClientFlowEnabled is off.
func (s *Server) Authorize(req AuthorizeRequest) (AuthorizeResult, error) {
	app, err := s.apps.Get(req.AppID)
	if err != nil {
		return AuthorizeResult{}, ErrUnknownApp
	}
	if app.Suspended {
		return AuthorizeResult{}, ErrAppSuspended
	}
	if req.RedirectURI != app.RedirectURI {
		return AuthorizeResult{}, fmt.Errorf("%w: got %q", ErrRedirectMismatch, req.RedirectURI)
	}
	for _, scope := range req.Scopes {
		if !app.HasPermission(scope) {
			return AuthorizeResult{}, fmt.Errorf("%w: %q", ErrScopeNotApproved, scope)
		}
	}
	account, err := s.graph.Account(req.AccountID)
	if err != nil {
		return AuthorizeResult{}, ErrUnknownAccount
	}
	if account.Suspended {
		return AuthorizeResult{}, ErrAccountSuspended
	}

	switch req.ResponseType {
	case ResponseToken:
		if !s.prov.Supports(provider.FlowImplicit) {
			return AuthorizeResult{}, fmt.Errorf("%w: implicit", ErrFlowUnsupported)
		}
		if !app.ClientFlowEnabled {
			return AuthorizeResult{}, ErrClientFlowDisabled
		}
		info := s.issue(account.ID, app, req.Scopes)
		return AuthorizeResult{
			AccessToken: info.Token,
			ExpiresIn:   int64(info.ExpiresAt.Sub(info.IssuedAt) / time.Second),
			State:       req.State,
		}, nil
	case ResponseCode:
		if !s.prov.Supports(provider.FlowCode) {
			return AuthorizeResult{}, fmt.Errorf("%w: code", ErrFlowUnsupported)
		}
		code := ids.NewSecret()
		s.mu.Lock()
		s.codes[code] = authCode{
			code:      code,
			appID:     app.ID,
			accountID: account.ID,
			scopes:    append([]string(nil), req.Scopes...),
			redirect:  req.RedirectURI,
			expiresAt: s.clock.Now().Add(codeLifetime),
		}
		s.mu.Unlock()
		return AuthorizeResult{Code: code, State: req.State}, nil
	default:
		return AuthorizeResult{}, fmt.Errorf("%w: %q", ErrBadResponseType, req.ResponseType)
	}
}

// ExchangeCode implements the server-side token endpoint: the application
// authenticates with its secret and swaps the one-time code for a token.
func (s *Server) ExchangeCode(appID, appSecret, redirectURI, code string) (TokenInfo, error) {
	app, err := s.apps.Get(appID)
	if err != nil {
		return TokenInfo{}, ErrUnknownApp
	}
	if app.Suspended {
		return TokenInfo{}, ErrAppSuspended
	}
	if subtleNeq(appSecret, app.Secret) {
		return TokenInfo{}, ErrBadSecret
	}
	s.mu.Lock()
	ac, ok := s.codes[code]
	if ok {
		delete(s.codes, code) // single use
	}
	s.mu.Unlock()
	if !ok || ac.appID != appID || ac.redirect != redirectURI {
		return TokenInfo{}, ErrInvalidCode
	}
	if s.clock.Now().After(ac.expiresAt) {
		return TokenInfo{}, ErrInvalidCode
	}
	info := s.issue(ac.accountID, app, ac.scopes)
	return info, nil
}

// ExchangeForLongLived swaps a valid token for a long-term (~60 day) one
// — Facebook's grant_type=fb_exchange_token. The request authenticates
// with the application secret, so only the app's own server can extend
// its tokens; leaked client-side tokens cannot be extended by attackers
// who lack the secret. The original token remains valid until its own
// expiry.
func (s *Server) ExchangeForLongLived(appID, appSecret, token string) (TokenInfo, error) {
	app, err := s.apps.Get(appID)
	if err != nil {
		return TokenInfo{}, ErrUnknownApp
	}
	if app.Suspended {
		return TokenInfo{}, ErrAppSuspended
	}
	if subtleNeq(appSecret, app.Secret) {
		return TokenInfo{}, ErrBadSecret
	}
	info, err := s.Validate(token)
	if err != nil {
		return TokenInfo{}, err
	}
	if info.AppID != appID {
		return TokenInfo{}, fmt.Errorf("%w: token belongs to another application", ErrTokenNotFound)
	}
	now := s.clock.Now()
	long := &TokenInfo{
		Token:     s.prov.MintToken(),
		AccountID: info.AccountID,
		AppID:     appID,
		Scopes:    append([]string(nil), info.Scopes...),
		IssuedAt:  now,
		ExpiresAt: now.Add(apps.LongTermDuration),
	}
	s.mu.Lock()
	s.tokens[long.Token] = long
	acct := s.byAccount[long.AccountID]
	if acct == nil {
		acct = make(map[string]bool)
		s.byAccount[long.AccountID] = acct
	}
	acct[long.Token] = true
	s.mu.Unlock()
	s.noteIssued(appID, long.Token, "long-lived")
	out := *long
	out.Scopes = append([]string(nil), long.Scopes...)
	return out, nil
}

// noteIssued records one token grant: a counter bump and an oauth.issue
// span carrying the app and the redacted token prefix.
func (s *Server) noteIssued(appID, token, grant string) {
	if s.obs == nil {
		return
	}
	s.issued.Inc(appID)
	_, span := s.obs.T().StartSpan(nil, "oauth.issue")
	span.SetAttr("app", appID)
	span.SetAttr("grant", grant)
	span.SetAttr("token", redact.Token(token))
	span.End()
}

// issue mints and records a token for the account/app pair.
func (s *Server) issue(accountID string, app apps.App, scopes []string) TokenInfo {
	now := s.clock.Now()
	info := &TokenInfo{
		Token:     s.prov.MintToken(),
		AccountID: accountID,
		AppID:     app.ID,
		Scopes:    append([]string(nil), scopes...),
		IssuedAt:  now,
		ExpiresAt: now.Add(app.Lifetime.Duration()),
	}
	s.mu.Lock()
	s.tokens[info.Token] = info
	acct := s.byAccount[accountID]
	if acct == nil {
		acct = make(map[string]bool)
		s.byAccount[accountID] = acct
	}
	acct[info.Token] = true
	s.mu.Unlock()
	s.noteIssued(app.ID, info.Token, "user")
	return *info
}

// Validate checks a bearer token and returns its record. The error
// distinguishes unknown, expired, and invalidated tokens. A token that
// fails the provider's surface format check is rejected as unknown
// before any state is consulted — the check is alloc-free, so this
// stays off the validation allocation budget.
func (s *Server) Validate(token string) (TokenInfo, error) {
	if s.prov.CheckToken(token) != nil {
		return TokenInfo{}, ErrTokenNotFound
	}
	s.mu.RLock()
	info, ok := s.tokens[token]
	s.mu.RUnlock()
	if !ok {
		return TokenInfo{}, ErrTokenNotFound
	}
	if info.Invalidated {
		if info.invalidErr != nil {
			return TokenInfo{}, info.invalidErr
		}
		return TokenInfo{}, ErrTokenInvalidated
	}
	if s.clock.Now().After(info.ExpiresAt) {
		return TokenInfo{}, ErrTokenExpired
	}
	// The returned record shares the issuance-time Scopes array (see
	// TokenInfo); validation itself allocates nothing.
	return *info, nil
}

// Invalidate administratively revokes a token. Revoking an unknown token is
// a no-op and reports false.
func (s *Server) Invalidate(token, reason string) bool {
	s.mu.Lock()
	info, ok := s.tokens[token]
	if !ok || info.Invalidated {
		s.mu.Unlock()
		return false
	}
	info.Invalidated = true
	info.InvalidReason = reason
	info.invalidErr = fmt.Errorf("%w (%s)", ErrTokenInvalidated, reason)
	s.mu.Unlock()
	s.invalidated.Inc(reason)
	return true
}

// InvalidateAccount revokes every live token of an account and returns how
// many were revoked.
func (s *Server) InvalidateAccount(accountID, reason string) int {
	s.mu.Lock()
	n := 0
	var invalidErr error // shared by every token revoked for this reason
	for token := range s.byAccount[accountID] {
		info := s.tokens[token]
		if info != nil && !info.Invalidated {
			if invalidErr == nil {
				invalidErr = fmt.Errorf("%w (%s)", ErrTokenInvalidated, reason)
			}
			info.Invalidated = true
			info.InvalidReason = reason
			info.invalidErr = invalidErr
			n++
		}
	}
	s.mu.Unlock()
	if n > 0 {
		s.invalidated.Add(int64(n), reason)
	}
	return n
}

// SecretProof computes the appsecret_proof for a token: an HMAC-SHA256 of
// the token keyed with the application secret, hex encoded (Facebook's
// "Securing Graph API Requests" scheme referenced in Sec. 6).
func SecretProof(appSecret, token string) string {
	mac := hmac.New(sha256.New, []byte(appSecret))
	mac.Write([]byte(token))
	return hex.EncodeToString(mac.Sum(nil))
}

// VerifySecretProof checks a presented proof against the app's secret. A
// missing proof is only an error when the app requires it.
func (s *Server) VerifySecretProof(info TokenInfo, proof string) error {
	app, err := s.apps.Get(info.AppID)
	if err != nil {
		return ErrUnknownApp
	}
	if proof == "" {
		if app.RequireAppSecret {
			return ErrSecretProofRequired
		}
		return nil
	}
	want := SecretProof(app.Secret, info.Token)
	if !secrets.Equal(want, proof) {
		return ErrBadSecretProof
	}
	return nil
}

// LiveTokenCount reports how many unexpired, unrevoked tokens exist; used
// by experiments to track pool replenishment.
func (s *Server) LiveTokenCount() int {
	now := s.clock.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, info := range s.tokens {
		if !info.Invalidated && !now.After(info.ExpiresAt) {
			n++
		}
	}
	return n
}

// subtleNeq reports whether two strings differ, in constant time.
func subtleNeq(a, b string) bool {
	return !secrets.Equal(a, b)
}
