package metrics

// RetentionCounters tracks the social graph's edge-history eviction: how
// many retention sweeps ran and how many likes, comments, and activity
// entries each class has aged out of the analytics window. The store owns
// one instance and bumps it under no lock (the fields are atomic), so the
// counters are exportable at scrape time without touching shard mutexes.
type RetentionCounters struct {
	sweeps     Counter
	likes      Counter
	comments   Counter
	activities Counter
}

// RecordSweep records one completed sweep and the number of edges it
// evicted per class.
func (r *RetentionCounters) RecordSweep(likes, comments, activities int64) {
	r.sweeps.Inc()
	r.likes.Add(likes)
	r.comments.Add(comments)
	r.activities.Add(activities)
}

// RetentionSnapshot is a point-in-time copy of the counters.
type RetentionSnapshot struct {
	Sweeps     int64
	Likes      int64
	Comments   int64
	Activities int64
}

// Snapshot returns the current counter values.
func (r *RetentionCounters) Snapshot() RetentionSnapshot {
	return RetentionSnapshot{
		Sweeps:     r.sweeps.Value(),
		Likes:      r.likes.Value(),
		Comments:   r.comments.Value(),
		Activities: r.activities.Value(),
	}
}
