package metrics

import "sync/atomic"

// paddedInt64 is an atomic counter padded to its own cache line so that
// adjacent per-shard counters do not false-share under heavy parallel
// traffic (the whole point of striping is to keep cores off each other's
// lines; the observability layer must not reintroduce the contention it
// measures).
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// ShardContention tracks lock pressure on a striped data structure: per
// shard, how many lock acquisitions occurred and how many of them had to
// wait because another goroutine held the stripe (the TryLock fast path
// failed). All methods are safe for concurrent use and wait-free.
type ShardContention struct {
	acquired  []paddedInt64
	contended []paddedInt64
}

// NewShardContention returns a tracker for the given number of shards.
func NewShardContention(shards int) *ShardContention {
	if shards <= 0 {
		panic("metrics: non-positive shard count")
	}
	return &ShardContention{
		acquired:  make([]paddedInt64, shards),
		contended: make([]paddedInt64, shards),
	}
}

// Shards returns the number of shards tracked.
func (c *ShardContention) Shards() int { return len(c.acquired) }

// Record notes one lock acquisition on the given shard; contended reports
// whether the acquisition had to wait.
func (c *ShardContention) Record(shard int, contended bool) {
	c.acquired[shard].v.Add(1)
	if contended {
		c.contended[shard].v.Add(1)
	}
}

// ShardContentionPoint is the counter snapshot for one shard.
type ShardContentionPoint struct {
	Shard     int
	Acquired  int64
	Contended int64
}

// Snapshot returns per-shard counters in shard order. Counters are read
// individually, so a snapshot taken during traffic is approximate.
func (c *ShardContention) Snapshot() []ShardContentionPoint {
	out := make([]ShardContentionPoint, len(c.acquired))
	for i := range c.acquired {
		out[i] = ShardContentionPoint{
			Shard:     i,
			Acquired:  c.acquired[i].v.Load(),
			Contended: c.contended[i].v.Load(),
		}
	}
	return out
}

// Totals returns the acquisition and contention counts summed over shards.
func (c *ShardContention) Totals() (acquired, contended int64) {
	for i := range c.acquired {
		acquired += c.acquired[i].v.Load()
		contended += c.contended[i].v.Load()
	}
	return acquired, contended
}

// ContendedFraction returns contended/acquired over all shards, or 0 when
// nothing has been recorded. This is the single number to watch: near 0
// the stripe count is ample; approaching 1 the store is effectively a
// single lock again.
func (c *ShardContention) ContendedFraction() float64 {
	acquired, contended := c.Totals()
	if acquired == 0 {
		return 0
	}
	return float64(contended) / float64(acquired)
}
