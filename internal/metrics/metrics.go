// Package metrics provides the small set of measurement primitives the
// experiment harness relies on: monotonic counters, time-bucketed series
// (daily for Figure 5, hourly for Figure 7), integer histograms (Figure 6),
// and cumulative-unique trackers (Figure 4).
//
// Everything is clock-agnostic: callers pass explicit timestamps, so the
// same code serves both simulated and wall-clock runs.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic counter. It is a single atomic
// word — it sits on the per-like hot path now that registry counters in
// internal/obs wrap it.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta (which must be non-negative).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.n.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Series accumulates values into fixed-width time buckets anchored at an
// origin instant. Bucket 0 covers [origin, origin+width).
type Series struct {
	mu      sync.Mutex
	origin  time.Time
	width   time.Duration
	sums    map[int]float64
	counts  map[int]int64
	maxSeen int
}

// NewSeries returns a Series with the given origin and bucket width.
func NewSeries(origin time.Time, width time.Duration) *Series {
	if width <= 0 {
		panic("metrics: non-positive Series width")
	}
	return &Series{
		origin: origin,
		width:  width,
		sums:   make(map[int]float64),
		counts: make(map[int]int64),
	}
}

// Bucket returns the bucket index for t. Times before the origin map to
// negative indices.
func (s *Series) Bucket(t time.Time) int {
	d := t.Sub(s.origin)
	idx := int(d / s.width)
	if d < 0 && d%s.width != 0 {
		idx--
	}
	return idx
}

// Observe records value v at time t.
func (s *Series) Observe(t time.Time, v float64) {
	idx := s.Bucket(t)
	s.mu.Lock()
	s.sums[idx] += v
	s.counts[idx]++
	if idx > s.maxSeen {
		s.maxSeen = idx
	}
	s.mu.Unlock()
}

// Point is one bucket of a Series.
type Point struct {
	Bucket int
	Sum    float64
	Count  int64
	Mean   float64
}

// Points returns all observed buckets in index order. Empty buckets between
// observed ones are included with zero values so plots have a continuous
// x-axis.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sums) == 0 {
		return nil
	}
	min := s.maxSeen
	for idx := range s.sums {
		if idx < min {
			min = idx
		}
	}
	out := make([]Point, 0, s.maxSeen-min+1)
	for idx := min; idx <= s.maxSeen; idx++ {
		p := Point{Bucket: idx, Sum: s.sums[idx], Count: s.counts[idx]}
		if p.Count > 0 {
			p.Mean = p.Sum / float64(p.Count)
		}
		out = append(out, p)
	}
	return out
}

// MeanAt returns the mean of observations in the bucket containing t, and
// whether any observation landed there.
func (s *Series) MeanAt(t time.Time) (float64, bool) {
	idx := s.Bucket(t)
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counts[idx]
	if c == 0 {
		return 0, false
	}
	return s.sums[idx] / float64(c), true
}

// IntHistogram counts occurrences of small integer values (e.g. "number of
// honeypot posts liked by an account", Figure 6).
type IntHistogram struct {
	mu     sync.Mutex
	counts map[int]int64
	total  int64
}

// NewIntHistogram returns an empty histogram.
func NewIntHistogram() *IntHistogram {
	return &IntHistogram{counts: make(map[int]int64)}
}

// Observe records one occurrence of v.
func (h *IntHistogram) Observe(v int) {
	h.mu.Lock()
	h.counts[v]++
	h.total++
	h.mu.Unlock()
}

// Bin is one histogram bin.
type Bin struct {
	Value    int
	Count    int64
	Fraction float64
}

// Bins returns the bins in ascending value order.
func (h *IntHistogram) Bins() []Bin {
	h.mu.Lock()
	defer h.mu.Unlock()
	vals := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	out := make([]Bin, 0, len(vals))
	for _, v := range vals {
		c := h.counts[v]
		var f float64
		if h.total > 0 {
			f = float64(c) / float64(h.total)
		}
		out = append(out, Bin{Value: v, Count: c, Fraction: f})
	}
	return out
}

// Total returns the number of observations.
func (h *IntHistogram) Total() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// UniqueTracker tracks, per step, the cumulative count of distinct keys
// seen so far alongside a cumulative event count. Figure 4 plots exactly
// this pair against the post index.
type UniqueTracker struct {
	mu        sync.Mutex
	seen      map[string]bool
	cumEvents int64
	steps     []UniquePoint
}

// UniquePoint is the state after one step.
type UniquePoint struct {
	Step             int
	CumulativeEvents int64
	CumulativeUnique int64
}

// NewUniqueTracker returns an empty tracker.
func NewUniqueTracker() *UniqueTracker {
	return &UniqueTracker{seen: make(map[string]bool)}
}

// Step records one batch of keys (e.g. the likers of one honeypot post) and
// appends a new point.
func (u *UniqueTracker) Step(keys []string) UniquePoint {
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, k := range keys {
		u.seen[k] = true
	}
	u.cumEvents += int64(len(keys))
	p := UniquePoint{
		Step:             len(u.steps) + 1,
		CumulativeEvents: u.cumEvents,
		CumulativeUnique: int64(len(u.seen)),
	}
	u.steps = append(u.steps, p)
	return p
}

// Points returns all recorded steps.
func (u *UniqueTracker) Points() []UniquePoint {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]UniquePoint, len(u.steps))
	copy(out, u.steps)
	return out
}

// Unique returns the number of distinct keys observed so far.
func (u *UniqueTracker) Unique() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return int64(len(u.seen))
}
