package metrics

import (
	"sync"
	"testing"
)

func TestRetentionCountersConcurrent(t *testing.T) {
	var rc RetentionCounters
	const goroutines, sweeps = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < sweeps; i++ {
				rc.RecordSweep(3, 2, 1)
			}
		}()
	}
	wg.Wait()
	snap := rc.Snapshot()
	want := RetentionSnapshot{
		Sweeps:     goroutines * sweeps,
		Likes:      3 * goroutines * sweeps,
		Comments:   2 * goroutines * sweeps,
		Activities: goroutines * sweeps,
	}
	if snap != want {
		t.Fatalf("Snapshot = %+v, want %+v", snap, want)
	}
}

func TestRetentionCountersZeroValueUsable(t *testing.T) {
	var rc RetentionCounters
	if got := rc.Snapshot(); got != (RetentionSnapshot{}) {
		t.Fatalf("zero-value snapshot = %+v", got)
	}
	rc.RecordSweep(0, 0, 0)
	if got := rc.Snapshot().Sweeps; got != 1 {
		t.Fatalf("Sweeps = %d", got)
	}
}
