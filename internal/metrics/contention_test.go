package metrics

import (
	"sync"
	"testing"
)

func TestShardContentionRecordAndSnapshot(t *testing.T) {
	c := NewShardContention(4)
	if c.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", c.Shards())
	}
	c.Record(0, false)
	c.Record(0, true)
	c.Record(3, false)
	snap := c.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len(Snapshot) = %d", len(snap))
	}
	if snap[0].Acquired != 2 || snap[0].Contended != 1 {
		t.Fatalf("shard 0 = %+v", snap[0])
	}
	if snap[3].Acquired != 1 || snap[3].Contended != 0 {
		t.Fatalf("shard 3 = %+v", snap[3])
	}
	acq, cont := c.Totals()
	if acq != 3 || cont != 1 {
		t.Fatalf("Totals = %d, %d", acq, cont)
	}
	if got := c.ContendedFraction(); got != 1.0/3.0 {
		t.Fatalf("ContendedFraction = %v", got)
	}
}

func TestShardContentionZero(t *testing.T) {
	c := NewShardContention(2)
	if got := c.ContendedFraction(); got != 0 {
		t.Fatalf("empty ContendedFraction = %v", got)
	}
}

func TestShardContentionConcurrent(t *testing.T) {
	const shards, workers, per = 8, 16, 1000
	c := NewShardContention(shards)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Record((w+i)%shards, i%2 == 0)
			}
		}(w)
	}
	wg.Wait()
	acq, cont := c.Totals()
	if acq != workers*per {
		t.Fatalf("acquired = %d, want %d", acq, workers*per)
	}
	if cont != workers*per/2 {
		t.Fatalf("contended = %d, want %d", cont, workers*per/2)
	}
}

func TestShardContentionInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero shards")
		}
	}()
	NewShardContention(0)
}
