package metrics

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var origin = time.Date(2016, time.August, 1, 0, 0, 0, 0, time.UTC)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("Value = %d, want 16000", got)
	}
}

func TestSeriesBucketing(t *testing.T) {
	s := NewSeries(origin, 24*time.Hour)
	cases := []struct {
		t    time.Time
		want int
	}{
		{origin, 0},
		{origin.Add(23 * time.Hour), 0},
		{origin.Add(24 * time.Hour), 1},
		{origin.Add(10 * 24 * time.Hour), 10},
		{origin.Add(-time.Hour), -1},
		{origin.Add(-25 * time.Hour), -2},
	}
	for _, tc := range cases {
		if got := s.Bucket(tc.t); got != tc.want {
			t.Errorf("Bucket(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestSeriesMeans(t *testing.T) {
	s := NewSeries(origin, 24*time.Hour)
	s.Observe(origin.Add(time.Hour), 400)
	s.Observe(origin.Add(2*time.Hour), 200)
	s.Observe(origin.Add(26*time.Hour), 100)
	mean, ok := s.MeanAt(origin)
	if !ok || mean != 300 {
		t.Fatalf("MeanAt(day0) = %v, %v; want 300, true", mean, ok)
	}
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("len(Points) = %d, want 2", len(pts))
	}
	if pts[0].Mean != 300 || pts[1].Mean != 100 {
		t.Fatalf("Points = %+v", pts)
	}
}

func TestSeriesFillsGaps(t *testing.T) {
	s := NewSeries(origin, time.Hour)
	s.Observe(origin, 1)
	s.Observe(origin.Add(5*time.Hour), 1)
	pts := s.Points()
	if len(pts) != 6 {
		t.Fatalf("len(Points) = %d, want 6 (gap buckets included)", len(pts))
	}
	for i := 1; i < 5; i++ {
		if pts[i].Count != 0 {
			t.Fatalf("gap bucket %d has count %d", i, pts[i].Count)
		}
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries(origin, time.Hour)
	if pts := s.Points(); pts != nil {
		t.Fatalf("empty series Points = %v, want nil", pts)
	}
	if _, ok := s.MeanAt(origin); ok {
		t.Fatal("empty series MeanAt reported ok")
	}
}

func TestSeriesZeroWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-width series did not panic")
		}
	}()
	NewSeries(origin, 0)
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram()
	for i := 0; i < 76; i++ {
		h.Observe(1)
	}
	for i := 0; i < 24; i++ {
		h.Observe(3)
	}
	bins := h.Bins()
	if len(bins) != 2 {
		t.Fatalf("len(Bins) = %d, want 2", len(bins))
	}
	if bins[0].Value != 1 || bins[0].Count != 76 {
		t.Fatalf("bin0 = %+v", bins[0])
	}
	if f := bins[0].Fraction; f != 0.76 {
		t.Fatalf("bin0 fraction = %v, want 0.76", f)
	}
	if h.Total() != 100 {
		t.Fatalf("Total = %d, want 100", h.Total())
	}
}

func TestIntHistogramEmpty(t *testing.T) {
	h := NewIntHistogram()
	if bins := h.Bins(); len(bins) != 0 {
		t.Fatalf("empty histogram Bins = %v", bins)
	}
}

func TestUniqueTrackerDiminishingReturns(t *testing.T) {
	u := NewUniqueTracker()
	p1 := u.Step([]string{"a", "b", "c"})
	if p1.CumulativeEvents != 3 || p1.CumulativeUnique != 3 || p1.Step != 1 {
		t.Fatalf("p1 = %+v", p1)
	}
	p2 := u.Step([]string{"b", "c", "d"})
	if p2.CumulativeEvents != 6 || p2.CumulativeUnique != 4 {
		t.Fatalf("p2 = %+v", p2)
	}
	pts := u.Points()
	if len(pts) != 2 {
		t.Fatalf("len(Points) = %d, want 2", len(pts))
	}
	if u.Unique() != 4 {
		t.Fatalf("Unique = %d, want 4", u.Unique())
	}
}

// Property: cumulative unique count never exceeds cumulative events and
// both are non-decreasing.
func TestQuickUniqueTrackerInvariants(t *testing.T) {
	f := func(batches [][]byte) bool {
		u := NewUniqueTracker()
		var prev UniquePoint
		for _, b := range batches {
			keys := make([]string, len(b))
			for i, x := range b {
				keys[i] = fmt.Sprintf("k%d", x%32)
			}
			p := u.Step(keys)
			if p.CumulativeUnique > p.CumulativeEvents {
				return false
			}
			if p.CumulativeEvents < prev.CumulativeEvents || p.CumulativeUnique < prev.CumulativeUnique {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a Series mean is always within [min, max] of observed values.
func TestQuickSeriesMeanBounded(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewSeries(origin, time.Hour)
		min, max := float64(vals[0]), float64(vals[0])
		for _, v := range vals {
			fv := float64(v)
			s.Observe(origin, fv)
			if fv < min {
				min = fv
			}
			if fv > max {
				max = fv
			}
		}
		mean, ok := s.MeanAt(origin)
		return ok && mean >= min && mean <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
