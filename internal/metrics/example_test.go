package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

// The diminishing-returns signature of honeypot milking (Figure 4): each
// post gains a fixed number of likes, but fewer and fewer likers are new.
func ExampleUniqueTracker() {
	u := metrics.NewUniqueTracker()
	posts := [][]string{
		{"a", "b", "c"},
		{"b", "c", "d"},
		{"a", "c", "d"},
	}
	for _, likers := range posts {
		p := u.Step(likers)
		fmt.Printf("post %d: likes=%d unique=%d\n", p.Step, p.CumulativeEvents, p.CumulativeUnique)
	}
	// Output:
	// post 1: likes=3 unique=3
	// post 2: likes=6 unique=4
	// post 3: likes=9 unique=4
}

func ExampleIntHistogram() {
	h := metrics.NewIntHistogram()
	for _, postsLiked := range []int{1, 1, 1, 2, 3} {
		h.Observe(postsLiked)
	}
	for _, bin := range h.Bins() {
		fmt.Printf("%d posts: %.0f%%\n", bin.Value, 100*bin.Fraction)
	}
	// Output:
	// 1 posts: 60%
	// 2 posts: 20%
	// 3 posts: 20%
}
