package redact

import (
	"fmt"
	"net/url"
	"strings"
	"testing"

	"repro/internal/provider"
)

func TestToken(t *testing.T) {
	tok := "EAAB1234567890abcdefghijklmnop"
	got := Token(tok)
	if strings.Contains(got, tok[keep:]) {
		t.Fatalf("Token(%q) = %q still contains the secret tail", tok, got)
	}
	if !strings.HasPrefix(got, tok[:keep]) {
		t.Fatalf("Token(%q) = %q lost the correlation prefix", tok, got)
	}
	if Token("short") != "***" {
		t.Fatalf("Token(short) = %q; short inputs must be fully masked", Token("short"))
	}
	if Token("") != "***" {
		t.Fatalf("Token(\"\") = %q", Token(""))
	}
}

func TestURLMasksImplicitFlowFragment(t *testing.T) {
	// The shape from the paper's Fig. 3: token in the redirect fragment.
	raw := "https://app.example/cb#access_token=EAABsecretsecretsecret&expires_in=3600"
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	got := URL(u)
	if strings.Contains(got, "secretsecret") {
		t.Fatalf("URL(%q) = %q leaks the token", raw, got)
	}
	if !strings.Contains(got, "expires_in=3600") {
		t.Fatalf("URL(%q) = %q lost the non-sensitive parameter", raw, got)
	}
	if u.Fragment != "access_token=EAABsecretsecretsecret&expires_in=3600" {
		t.Fatalf("URL mutated its argument: fragment now %q", u.Fragment)
	}
}

func TestURLMasksQueryAndUserinfo(t *testing.T) {
	raw := "https://user:pw@graph.example/debug_token?input_token=EAABtoptoptopsecret&client_secret=sekrit123456&fields=id"
	u, _ := url.Parse(raw)
	got := URL(u)
	for _, leak := range []string{"toptopsecret", "sekrit123456", "user:pw"} {
		if strings.Contains(got, leak) {
			t.Fatalf("URL(%q) = %q leaks %q", raw, got, leak)
		}
	}
	if !strings.Contains(got, "fields=id") {
		t.Fatalf("URL(%q) = %q lost the non-sensitive parameter", raw, got)
	}
}

func TestURLOpaqueFragmentMasked(t *testing.T) {
	u, _ := url.Parse("https://app.example/cb#EAABbaretokennokeys")
	if got := URL(u); strings.Contains(got, "baretoken") {
		t.Fatalf("opaque fragment leaked: %q", got)
	}
}

func TestURLString(t *testing.T) {
	if got := URLString("https://x/cb#access_token=EAABzzzzzzzzzzzz"); strings.Contains(got, "zzzz") {
		t.Fatalf("URLString leaked: %q", got)
	}
	// Unparseable input is masked wholesale, not returned verbatim.
	bad := "http://%zz/EAABzzzzzzzzzzzz"
	if got := URLString(bad); strings.Contains(got, "EAAB") && len(got) > keep+3 {
		t.Fatalf("URLString(%q) = %q not masked", bad, got)
	}
	if URL(nil) != "" {
		t.Fatalf("URL(nil) = %q", URL(nil))
	}
}

func TestStringScrubsKeyValuePairs(t *testing.T) {
	cases := []struct{ in, want string }{
		// query-style pairs anywhere in free text
		{"joined with access_token=EAACEdEose0cBA1234", "joined with access_token=EAACEd***"},
		{"pair token=EAACEdEose0cBA&expires=0 done", "pair token=EAACEd***&expires=0 done"},
		// colon-separated forms (error strings, JSON-ish dumps)
		{"auth: client_secret: EAACEdsecretsecret", "auth: client_secret: EAACEd***"},
		{"got code:EAACEdauthcode here", "got code:EAACEd*** here"},
		// short values still masked wholesale
		{"token=abc", "token=***"},
		// word-boundary: keys inside identifiers are untouched
		{"use mytoken=notasecret", "use mytoken=notasecret"},
		{"tokenizer=lexical", "tokenizer=lexical"},
		// URL schemes after a colon are not values
		{"see token://host/path", "see token://host/path"},
		// credential-free text passes through byte-for-byte
		{"delivered 464 likes in 1.7ms", "delivered 464 likes in 1.7ms"},
		{"", ""},
	}
	for _, c := range cases {
		if got := String(c.in); got != c.want {
			t.Errorf("String(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStringMasksBareProviderTokens(t *testing.T) {
	fb := "EAAB0123456789abcdef0123456789abcdef12"
	pg := "PTGR.0123456789abcdef01234567.89ab"
	cases := []struct{ in, want string }{
		// bare tokens in free text: no key= anchor, shape alone triggers
		{"collected " + fb + " from member", "collected EAAB01*** from member"},
		{"exchange failed: " + pg + " rejected", "exchange failed: PTGR.0*** rejected"},
		// both formats in one line
		{fb + " vs " + pg, "EAAB01*** vs PTGR.0***"},
		// inside a URL path (URL() only scrubs query/fragment; String is
		// the backstop for URLs embedded in log text)
		{"GET /debug/" + pg + "/check", "GET /debug/PTGR.0***/check"},
		// word boundary: token-shaped tail of an identifier is untouched
		{"idEAAB0123456789abcdef0123456789abcdef12", "idEAAB0123456789abcdef0123456789abcdef12"},
		// too-short hex run is not a facebook token
		{"EAABdeadbeef done", "EAABdeadbeef done"},
		// malformed pictogram shapes pass through
		{"PTGR.tooshort.89ab", "PTGR.tooshort.89ab"},
		{"PTGR.0123456789abcdef01234567x89ab", "PTGR.0123456789abcdef01234567x89ab"},
	}
	for _, c := range cases {
		if got := String(c.in); got != c.want {
			t.Errorf("String(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Every registered provider's minted tokens must be recognized bare — a
// new provider whose format escapes String() fails here, not in a log.
func TestStringMasksMintedTokensAllProviders(t *testing.T) {
	for _, name := range provider.Names() {
		prov := provider.MustGet(name)
		tok := prov.MintToken()
		for _, tmpl := range []string{
			"worker got %s for delivery",
			"error: token %s expired",
			"redirect https://cb.example/done#%s landed",
		} {
			in := fmt.Sprintf(tmpl, tok)
			got := String(in)
			if strings.Contains(got, tok) {
				t.Errorf("provider %s: String(%q) leaked the full token", name, in)
			}
			if !strings.Contains(got, Token(tok)) {
				t.Errorf("provider %s: String(%q) = %q lost the correlation prefix %q",
					name, in, got, Token(tok))
			}
		}
		// URL query and fragment paths mask the same tokens when keyed.
		raw := "https://cb.example/done?access_token=" + tok + "#token=" + tok
		if got := URLString(raw); strings.Contains(got, tok) {
			t.Errorf("provider %s: URLString leaked: %q", name, got)
		}
	}
}

func TestStringBareTokenIdempotent(t *testing.T) {
	in := "saw EAAB0123456789abcdef0123456789abcdef12 and PTGR.0123456789abcdef01234567.89ab"
	once := String(in)
	if twice := String(once); twice != once {
		t.Errorf("String not idempotent on bare tokens: %q -> %q", once, twice)
	}
}

func TestStringIdempotent(t *testing.T) {
	in := "retry with access_token=EAACEdEose0cBA1234 now"
	once := String(in)
	if twice := String(once); twice != once {
		t.Errorf("String not idempotent: %q -> %q", once, twice)
	}
}

func TestStringCaseInsensitive(t *testing.T) {
	got := String("Access_Token=EAACEdEose0cBA1234")
	if strings.Contains(got, "1234") {
		t.Fatalf("mixed-case key leaked: %q", got)
	}
	if !strings.HasPrefix(got, "Access_Token=") {
		t.Errorf("original casing not preserved: %q", got)
	}
}
