// Package redact scrubs bearer tokens and other credentials out of
// strings bound for logs, error values, or stdout. The paper's whole
// attack surface is a leaked OAuth access token (§3: collusion networks
// harvest tokens members copy out of the implicit-flow redirect URL), so
// the reproduction never writes a full credential to any diagnostic
// channel; the tokenflow analyzer enforces that statically, and these
// helpers are its sanctioned escape hatch.
package redact

import (
	"net/url"
	"strings"
)

// keep is how many leading characters of a credential survive
// redaction: enough to correlate log lines, far too few to replay.
const keep = 6

// sensitiveKeys are URL parameter names whose values are credentials.
// Matching is case-insensitive.
var sensitiveKeys = map[string]bool{
	"access_token":    true,
	"token":           true,
	"input_token":     true,
	"refresh_token":   true,
	"code":            true,
	"client_secret":   true,
	"secret":          true,
	"appsecret_proof": true,
	"signed_request":  true,
}

// Token masks a credential for safe logging, keeping a short prefix so
// operators can tell tokens apart without learning them.
func Token(s string) string {
	if len(s) <= keep {
		return "***"
	}
	return s[:keep] + "***"
}

// URL renders u with credential-bearing query and fragment parameters
// masked and any embedded userinfo dropped. It never returns the
// original token material even when the fragment is not key=value
// shaped (the implicit flow puts access_token in the fragment, which is
// exactly the part collusion-network members are told to copy).
func URL(u *url.URL) string {
	if u == nil {
		return ""
	}
	c := *u
	c.User = nil
	c.RawQuery = redactQuery(c.RawQuery)
	c.Fragment = redactFragment(c.Fragment)
	c.RawFragment = ""
	return c.String()
}

// URLString parses raw and redacts it; if raw is not a parseable URL
// the whole string is masked rather than risking a leak.
func URLString(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return Token(raw)
	}
	return URL(u)
}

// String scrubs credential-bearing key=value (or "key: value") pairs
// embedded anywhere in free text, masking each value with Token. It is
// the last line of defense for log lines assembled from arbitrary parts
// (the obs.Logger routes every string argument through here); text with
// no recognizable credential shape passes through unchanged.
func String(s string) string {
	lower := strings.ToLower(s)
	var b strings.Builder
	i := 0
	for i < len(s) {
		// Bare tokens first: a credential pasted into free text has no
		// key= prefix to anchor on, but every provider's token format has
		// a recognizable shape (EAAB…, PTGR.….…).
		if n, isTok := matchBareToken(s[i:]); isTok && !(i > 0 && isWordByte(s[i-1])) {
			b.WriteString(Token(s[i : i+n]))
			i += n
			continue
		}
		key, rest, ok := matchSensitiveKey(lower[i:])
		if !ok || (i > 0 && isWordByte(s[i-1])) {
			b.WriteByte(s[i])
			i++
			continue
		}
		// Copy the key and separator, then mask the value run.
		b.WriteString(s[i : i+key])
		j := i + key
		j += rest // "=" or ": " style separator length
		b.WriteString(s[i+key : j])
		end := j
		for end < len(s) && !isValueEnd(s[end]) {
			end++
		}
		if end > j {
			b.WriteString(Token(s[j:end]))
		}
		i = end
	}
	return b.String()
}

// matchSensitiveKey reports whether text starts with a sensitive key
// followed by a '=' or ':' separator, returning the key length and the
// separator length.
func matchSensitiveKey(text string) (keyLen, sepLen int, ok bool) {
	for k := range sensitiveKeys {
		if !strings.HasPrefix(text, k) {
			continue
		}
		rest := text[len(k):]
		switch {
		case strings.HasPrefix(rest, "="):
			return len(k), 1, true
		case strings.HasPrefix(rest, ": "):
			return len(k), 2, true
		case strings.HasPrefix(rest, ":") && len(rest) > 1 && rest[1] != '/':
			// "token:abc" but not "token://host" URL schemes.
			return len(k), 1, true
		}
	}
	return 0, 0, false
}

// matchBareToken reports whether text begins with a bare provider access
// token — one pasted into free text rather than carried in a key=value
// pair — and returns its length. Shapes, one per registered provider:
//
//	EAAB<hex…>            facebook-style opaque token (≥16 hex digits)
//	PTGR.<24 hex>.<4 hex> pictogram signed token
func matchBareToken(text string) (int, bool) {
	if strings.HasPrefix(text, "EAAB") {
		j := 4
		for j < len(text) && isHexByte(text[j]) {
			j++
		}
		if j >= 4+16 {
			return j, true
		}
	}
	if strings.HasPrefix(text, "PTGR.") {
		const payload, checksum = 24, 4
		total := 5 + payload + 1 + checksum
		if len(text) >= total && text[5+payload] == '.' {
			ok := true
			for _, r := range []struct{ lo, hi int }{{5, 5 + payload}, {5 + payload + 1, total}} {
				for j := r.lo; j < r.hi; j++ {
					if !isHexByte(text[j]) {
						ok = false
					}
				}
			}
			if ok {
				return total, true
			}
		}
	}
	return 0, false
}

func isHexByte(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f'
}

func isWordByte(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isValueEnd(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '&', '"', '\'', ',', ';', ')', ']', '}':
		return true
	}
	return false
}

func redactQuery(raw string) string {
	if raw == "" {
		return ""
	}
	vals, err := url.ParseQuery(raw)
	if err != nil {
		return "***"
	}
	return maskValues(vals)
}

func redactFragment(frag string) string {
	if frag == "" {
		return ""
	}
	// OAuth implicit-flow fragments are query-shaped; anything else is
	// opaque and gets masked wholesale.
	if vals, err := url.ParseQuery(frag); err == nil && strings.Contains(frag, "=") {
		return maskValues(vals)
	}
	return "***"
}

func maskValues(vals url.Values) string {
	for k, vs := range vals {
		if sensitiveKeys[strings.ToLower(k)] {
			for i := range vs {
				vs[i] = Token(vs[i])
			}
		}
	}
	return vals.Encode()
}
