package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
)

var traceEpoch = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)

func newTestTracer(capacity int) (*Tracer, *simclock.Simulated) {
	clock := simclock.NewSimulated(traceEpoch)
	return NewTracer(clock, capacity), clock
}

func TestSpanTree(t *testing.T) {
	tr, clock := newTestTracer(0)
	ctx, root := tr.StartSpan(context.Background(), "graphapi.like")
	clock.Advance(time.Millisecond)
	_, child := tr.StartSpan(ctx, "oauth.validate")
	if child.TraceID != root.TraceID {
		t.Errorf("child trace %q != root trace %q", child.TraceID, root.TraceID)
	}
	if child.ParentID != root.SpanID {
		t.Errorf("child parent %q != root span %q", child.ParentID, root.SpanID)
	}
	if root.ParentID != "" {
		t.Errorf("root has parent %q", root.ParentID)
	}
	child.End()
	clock.Advance(time.Millisecond)
	root.SetAttr("object", "post1")
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d finished spans, want 2", len(spans))
	}
	// Oldest first: the child ended before the root.
	if spans[0].Name != "oauth.validate" || spans[1].Name != "graphapi.like" {
		t.Errorf("order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if got := spans[1].DurUS; got != 2000 {
		t.Errorf("root duration = %dus, want 2000", got)
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0].Key != "object" {
		t.Errorf("root attrs = %+v", spans[1].Attrs)
	}
}

func TestSpanIDsDeterministic(t *testing.T) {
	tr, _ := newTestTracer(0)
	_, a := tr.StartSpan(nil, "a")
	_, b := tr.StartSpan(nil, "b")
	if a.TraceID != "t00000001" || b.TraceID != "t00000002" {
		t.Errorf("trace ids = %q, %q", a.TraceID, b.TraceID)
	}
	if a.SpanID != "s00000001" || b.SpanID != "s00000002" {
		t.Errorf("span ids = %q, %q", a.SpanID, b.SpanID)
	}
}

func TestStartSpanRemote(t *testing.T) {
	tr, _ := newTestTracer(0)
	_, s := tr.StartSpanRemote(nil, "graphapi.request", "t12345678", "sabcdef01")
	if s.TraceID != "t12345678" || s.ParentID != "sabcdef01" {
		t.Errorf("remote span = %+v", s)
	}
	// Empty trace ID falls back to a fresh trace.
	_, fresh := tr.StartSpanRemote(nil, "graphapi.request", "", "")
	if fresh.TraceID == "" {
		t.Error("fallback span has no trace ID")
	}
}

func TestUnsampledContext(t *testing.T) {
	tr, _ := newTestTracer(0)

	// Beneath an unsampled context no spans are created, for roots or
	// children, and the context round-trips unchanged.
	ctx := UnsampledContext(nil)
	got, s := tr.StartSpan(ctx, "graphapi.like")
	if s != nil {
		t.Errorf("unsampled StartSpan returned span %+v", s)
	}
	if got != ctx {
		t.Error("unsampled StartSpan changed the context")
	}
	if SpanFromContext(ctx) != nil {
		t.Error("SpanFromContext sees the unsampled sentinel")
	}

	// Suppression also applies beneath a live parent span.
	liveCtx, parent := tr.StartSpan(nil, "collusion.deliver")
	_, child := tr.StartSpan(UnsampledContext(liveCtx), "graphapi.like")
	if child != nil {
		t.Error("unsampled child beneath live parent was created")
	}
	parent.End()
	if n := len(tr.Spans()); n != 1 {
		t.Errorf("ring holds %d spans, want 1", n)
	}

	// Nil-safe: all span methods on the suppressed (nil) span are no-ops.
	child.SetAttr("k", "v")
	child.Event("e")
	child.End()
}

func TestRingEviction(t *testing.T) {
	tr, _ := newTestTracer(2)
	for _, name := range []string{"a", "b", "c"} {
		_, s := tr.StartSpan(nil, name)
		s.End()
	}
	if got := tr.Dropped(); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "b" || spans[1].Name != "c" {
		t.Errorf("retained = %+v", spans)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr, _ := newTestTracer(0)
	_, s := tr.StartSpan(nil, "a")
	s.End()
	s.End()
	if n := len(tr.Spans()); n != 1 {
		t.Errorf("double End recorded %d spans", n)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr, clock := newTestTracer(0)
	ctx, root := tr.StartSpan(nil, "milk.round")
	root.SetAttr("network", "hublaa")
	clock.Advance(time.Second)
	_, child := tr.StartSpan(ctx, "graphapi.like")
	child.Event("deny", "reason", "rate-limit")
	child.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	var lines []SpanData
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var d SpanData
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, d)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Trace != lines[1].Trace {
		t.Errorf("trace ids differ: %q vs %q", lines[0].Trace, lines[1].Trace)
	}
	if lines[0].Name != "graphapi.like" || lines[0].Parent == "" {
		t.Errorf("child line = %+v", lines[0])
	}
	if len(lines[0].Events) != 1 || lines[0].Events[0].Name != "deny" {
		t.Errorf("child events = %+v", lines[0].Events)
	}
}

// TestNilTracer exercises the whole span API on a nil tracer and nil
// spans: instrumented code must run unchanged when observability is off.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), "a")
	if s != nil || ctx == nil {
		t.Errorf("nil tracer StartSpan = (%v, %v)", ctx, s)
	}
	_, s = tr.StartSpanRemote(nil, "a", "t1", "s1")
	if s != nil {
		t.Error("nil tracer StartSpanRemote returned a span")
	}
	s.SetAttr("k", "v")
	s.Event("e")
	s.End()
	s.EndAt(time.Time{})
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer retains spans")
	}
	if err := tr.WriteJSONL(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
}
