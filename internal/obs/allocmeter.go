package obs

import (
	"context"
	"runtime/metrics"
	"sync/atomic"
)

// DefaultAllocSampleEvery is the meter-wide stride between measured
// windows. The ROADMAP's "allocation-free hot paths" work needs
// allocs-per-op numbers from the live system, but the cheapest runtime
// read is still ~microseconds — unacceptable on a per-like path that runs
// in tens of microseconds. One measured window per 16 sampled actions
// keeps the families fresh (every op label refills within a few rounds)
// while the amortized cost per action is a single atomic add.
const DefaultAllocSampleEvery = 16

// Runtime counter names read around each measured window. Cumulative
// monotonic counts maintained by the allocator itself; reading them does
// not stop the world (unlike runtime.ReadMemStats, which would be ruinous
// here — it is reserved for the low-frequency runtimestats sampler).
const (
	metricHeapAllocObjects = "/gc/heap/allocs:objects"
	metricHeapAllocBytes   = "/gc/heap/allocs:bytes"
)

// AllocMeter measures heap allocations attributable to a hot-path
// operation by differencing the runtime's cumulative allocation counters
// around the sampled action of a burst. It follows the same
// UnsampledContext discipline as tracing (PR 3): the one sampled action
// per delivery burst is eligible for measurement, the unsampled remainder
// costs a pointer compare, and exact counters elsewhere are untouched.
//
// Two caveats are inherent and documented rather than fought:
//
//   - The counters are process-global, so allocations by concurrent
//     goroutines land inside the window. The emitted gauges are sampled
//     estimates for trend-watching, not exact attributions — the
//     benchmarks and testing.AllocsPerRun gates stay the ground truth.
//   - The measurement itself may allocate a few objects (the
//     metrics.Read sample buffer), biasing small windows upward by
//     O(1) allocs. Per-op figures over a 50-like burst absorb this.
//
// A nil *AllocMeter is a valid no-op.
type AllocMeter struct {
	n     atomic.Uint64 // stride counter across all ops
	every atomic.Uint64 // sample 1 window in every N eligible Begins

	platform string      // value of the families' platform label
	perOp    *GaugeVec   // allocs_per_op{platform,op}
	bytesOp  *GaugeVec   // alloc_bytes_per_op{platform,op}
	windows  *CounterVec // allocmeter_windows_total{platform,op}
}

// DefaultPlatformLabel is the platform label value for meters not bound
// to a specific provider (benchmark worlds, the milker's own meter).
const DefaultPlatformLabel = "default"

// NewAllocMeter registers the meter's families on r and returns a meter
// with the default sampling stride and platform label. A nil registry
// yields a meter whose measurements go nowhere but whose gating still
// works (useful in tests).
func NewAllocMeter(r *Registry) *AllocMeter {
	return NewAllocMeterFor(r, DefaultPlatformLabel)
}

// NewAllocMeterFor is NewAllocMeter with an explicit platform label
// value, so multi-provider deployments split allocs-per-op by platform
// on one registry.
func NewAllocMeterFor(r *Registry, platform string) *AllocMeter {
	m := &AllocMeter{
		platform: platform,
		perOp: r.Gauge("allocs_per_op",
			"Sampled heap allocations per operation on a hot path, by platform and op.",
			"platform", "op"),
		bytesOp: r.Gauge("alloc_bytes_per_op",
			"Sampled heap bytes allocated per operation on a hot path, by platform and op.",
			"platform", "op"),
		windows: r.Counter("allocmeter_windows_total",
			"Measured allocation windows, by platform and op.",
			"platform", "op"),
	}
	m.every.Store(DefaultAllocSampleEvery)
	return m
}

// SetSampleEvery sets the stride between measured windows (minimum 1 =
// measure every sampled action; tests use this for determinism).
func (m *AllocMeter) SetSampleEvery(n uint64) {
	if m == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	m.every.Store(n)
}

// AllocSample is one open measurement window. The zero value (unarmed) is
// what unsampled or stridden-past Begins return; its End is a no-op.
type AllocSample struct {
	m       *AllocMeter
	op      string
	objects uint64
	bytes   uint64
	armed   bool
}

// readAllocCounters reads the cumulative allocation counters.
func readAllocCounters() (objects, bytes uint64) {
	var buf [2]metrics.Sample
	buf[0].Name = metricHeapAllocObjects
	buf[1].Name = metricHeapAllocBytes
	metrics.Read(buf[:])
	return buf[0].Value.Uint64(), buf[1].Value.Uint64()
}

// Begin opens a measurement window for op if ctx is sampled and the
// stride elects this call; otherwise it returns an unarmed window.
func (m *AllocMeter) Begin(ctx context.Context, op string) AllocSample {
	if m == nil || !Sampled(ctx) {
		return AllocSample{}
	}
	if every := m.every.Load(); every > 1 && m.n.Add(1)%every != 1 {
		return AllocSample{}
	}
	s := AllocSample{m: m, op: op, armed: true}
	s.objects, s.bytes = readAllocCounters()
	return s
}

// End closes the window and records allocations per operation, where ops
// is how many logical operations the window covered (len of the burst for
// graphapi.like_batch, 1 for a chain evaluation). Unarmed windows and
// non-positive ops are no-ops.
func (s AllocSample) End(ops int) {
	if !s.armed || ops <= 0 {
		return
	}
	objects, bytes := readAllocCounters()
	s.m.perOp.Set(float64(objects-s.objects)/float64(ops), s.m.platform, s.op)
	s.m.bytesOp.Set(float64(bytes-s.bytes)/float64(ops), s.m.platform, s.op)
	s.m.windows.Inc(s.m.platform, s.op)
}
