package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestMiddleware(t *testing.T) {
	clock := simclock.NewSimulated(traceEpoch)
	o := New(clock)
	handler := o.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	}), "api", func(path string) string {
		if strings.HasPrefix(path, "/post") {
			return "/{object}"
		}
		return path
	})

	for _, path := range []string{"/post1", "/post2", "/missing"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
	}

	var b strings.Builder
	if err := o.M().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`api_http_requests_total{endpoint="/{object}",status="200"} 2`,
		`api_http_requests_total{endpoint="/missing",status="404"} 1`,
		`api_http_request_seconds_count{endpoint="/{object}"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	spans := o.T().Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	attrs := map[string]string{}
	for _, a := range spans[2].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["status"] != "404" || attrs["endpoint"] != "/missing" || attrs["method"] != "GET" {
		t.Errorf("span attrs = %v", attrs)
	}
}

// TestMiddlewareJoinsRemoteTrace verifies a propagated X-Trace-Id /
// X-Parent-Span pair keeps the server-side span on the caller's trace.
func TestMiddlewareJoinsRemoteTrace(t *testing.T) {
	o := New(simclock.NewSimulated(traceEpoch))
	handler := o.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The joined span must be visible to the handler for nesting.
		if s := SpanFromContext(r.Context()); s == nil || s.TraceID != "t0000beef" {
			t.Errorf("handler span = %+v", s)
		}
	}), "api", nil)

	req := httptest.NewRequest("POST", "/x/likes", nil)
	req.Header.Set(HeaderTraceID, "t0000beef")
	req.Header.Set(HeaderParentSpan, "s0000beef")
	handler.ServeHTTP(httptest.NewRecorder(), req)

	spans := o.T().Spans()
	if len(spans) != 1 || spans[0].Trace != "t0000beef" || spans[0].Parent != "s0000beef" {
		t.Errorf("spans = %+v", spans)
	}
}

func TestMiddlewareLatencyUsesInjectedClock(t *testing.T) {
	clock := simclock.NewSimulated(traceEpoch)
	o := New(clock)
	handler := o.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		clock.Advance(250 * time.Millisecond)
	}), "api", nil)
	handler.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/me", nil))

	var b strings.Builder
	if err := o.M().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	// 0.25s lands exactly on the le="0.25" default bucket boundary.
	if !strings.Contains(b.String(), `api_http_request_seconds_bucket{endpoint="/me",le="0.25"} 1`) {
		t.Errorf("latency not measured in simulated time:\n%s", b.String())
	}
}

func TestRegisterDebug(t *testing.T) {
	o := New(simclock.NewSimulated(traceEpoch))
	o.M().Counter("x_total", "X.").Inc()
	_, s := o.T().StartSpan(nil, "a")
	s.End()

	mux := http.NewServeMux()
	o.RegisterDebug(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, b.String()
	}

	resp, body := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "x_total 1") {
		t.Errorf("/metrics body = %q", body)
	}

	_, body = get("/debug/traces")
	if !strings.Contains(body, `"name":"a"`) {
		t.Errorf("/debug/traces body = %q", body)
	}

	resp, _ = get("/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

func TestNilObserver(t *testing.T) {
	var o *Observer
	if o.T() != nil || o.M() != nil {
		t.Error("nil observer returned live components")
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := o.Middleware(inner, "api", nil); got == nil {
		t.Error("nil observer Middleware returned nil handler")
	}
}

// TestTracesHandlerFilter: ?trace=<id> on /debug/traces pulls a single
// request tree out of a ring holding spans from many traces.
func TestTracesHandlerFilter(t *testing.T) {
	o := New(simclock.NewSimulated(traceEpoch))
	ctx, root := o.T().StartSpan(nil, "root")
	_, child := o.T().StartSpan(ctx, "child")
	child.End()
	root.End()
	_, other := o.T().StartSpan(nil, "other")
	other.End()

	mux := http.NewServeMux()
	o.RegisterDebug(mux)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+root.TraceID, nil))
	body := rec.Body.String()
	if !strings.Contains(body, `"name":"root"`) || !strings.Contains(body, `"name":"child"`) {
		t.Errorf("filtered export missing the requested trace:\n%s", body)
	}
	if strings.Contains(body, `"name":"other"`) {
		t.Errorf("filtered export leaked a foreign trace:\n%s", body)
	}
	if lines := strings.Count(strings.TrimRight(body, "\n"), "\n") + 1; lines != 2 {
		t.Errorf("want 2 JSONL lines, got %d:\n%s", lines, body)
	}

	// No filter: everything comes back.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if body := rec.Body.String(); !strings.Contains(body, `"name":"other"`) {
		t.Errorf("unfiltered export missing spans:\n%s", body)
	}

	// Unknown ID: empty body, not an error.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace=nosuch", nil))
	if rec.Body.Len() != 0 {
		t.Errorf("unknown trace ID returned %q, want empty", rec.Body.String())
	}
}

// TestTracesDroppedCollector: once the span ring evicts, the loss is
// visible on /metrics so an operator knows the JSONL export is partial.
func TestTracesDroppedCollector(t *testing.T) {
	o := New(simclock.NewSimulated(traceEpoch))

	scrape := func() string {
		var b strings.Builder
		if err := o.M().WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if !strings.Contains(scrape(), "traces_dropped_total 0") {
		t.Fatalf("fresh observer scrape missing zero dropped counter:\n%s", scrape())
	}

	for i := 0; i < DefaultTraceCapacity+3; i++ {
		_, s := o.T().StartSpan(nil, "fill")
		s.End()
	}
	if !strings.Contains(scrape(), "traces_dropped_total 3") {
		t.Errorf("scrape after eviction missing traces_dropped_total 3:\n%s", scrape())
	}
}
