package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simclock"
)

// DefaultTraceCapacity is the ring-buffer size for finished spans: large
// enough to hold every span of a full milking round at test scale, small
// enough that a long-running daemon stays in bounded memory.
const DefaultTraceCapacity = 4096

// Tracer mints spans, times them against an injected clock, and keeps the
// most recent finished spans in a fixed-capacity ring for export. All
// methods are safe for concurrent use; a nil *Tracer is a valid no-op.
type Tracer struct {
	clock simclock.Clock

	// ids are sequential, not random: simulated runs are deterministic
	// end to end, and traces should be too.
	traceSeq atomic.Uint64
	spanSeq  atomic.Uint64

	mu      sync.Mutex
	ring    []*Span
	next    int
	filled  bool
	dropped int64
}

// NewTracer returns a tracer reading the given clock, retaining up to
// capacity finished spans (<= 0 selects DefaultTraceCapacity).
func NewTracer(clock simclock.Clock, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{clock: clock, ring: make([]*Span, capacity)}
}

// now reads the tracer's clock, tolerating nil tracers and clocks.
func (t *Tracer) now() time.Time {
	if t == nil || t.clock == nil {
		return time.Time{}
	}
	return t.clock.Now()
}

// Attr is one span attribute. Values are plain strings; credentials must
// be redacted (internal/redact) before they get here — the tokenflow
// analyzer enforces this at the SetAttr/Event call sites.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanEvent is a timestamped point event inside a span (a like failure, a
// policy denial, a token drop).
type SpanEvent struct {
	Name  string    `json:"name"`
	At    time.Time `json:"at"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one timed operation. Spans form trees: children inherit the
// trace ID and record the parent span ID. A nil *Span is a valid no-op,
// so call sites never branch on whether tracing is enabled.
type Span struct {
	tracer *Tracer

	Name     string
	TraceID  string
	SpanID   string
	ParentID string
	Start    time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []SpanEvent
	end    time.Time
	ended  bool
}

type ctxKey struct{}

// unsampled is a sentinel marking a context subtree where span creation
// is suppressed. Delivery bursts fire hundreds of likes per round;
// tracing every one costs more than the rest of the request combined, so
// hot loops trace a representative sample fully and tag the remainder
// with this sentinel. Metrics are unaffected — sampling bounds trace
// volume and per-call cost, never counter accuracy.
var unsampled = &Span{Name: "unsampled"}

var unsampledBackground = context.WithValue(context.Background(), ctxKey{}, unsampled)

// UnsampledContext returns a context beneath which StartSpan/StartSpanAt
// return a nil span without allocating. Use it for the non-sampled
// iterations of a hot loop whose first iteration is traced normally.
func UnsampledContext(ctx context.Context) context.Context {
	if ctx == nil || ctx == context.Background() {
		return unsampledBackground
	}
	return context.WithValue(ctx, ctxKey{}, unsampled)
}

// ContextWithSpan returns ctx carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil. The
// unsampled sentinel reads as nil: callers must not attach attributes
// or propagate trace headers for suppressed subtrees.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	if s == unsampled {
		return nil
	}
	return s
}

// Sampled reports whether ctx is outside an UnsampledContext subtree — the
// gate shared by span creation and the AllocMeter, so per-burst sampling
// decisions made once in a delivery loop govern every measurement kind. A
// nil context counts as sampled, matching StartSpan.
func Sampled(ctx context.Context) bool {
	if ctx == nil {
		return true
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s != unsampled
}

// seqID renders a sequence number as prefix + 8 lowercase hex digits.
// Hand-rolled because fmt.Sprintf is measurable on the per-like hot path.
func seqID(prefix byte, n uint64) string {
	const digits = "0123456789abcdef"
	var b [9]byte
	b[0] = prefix
	for i := 8; i >= 1; i-- {
		b[i] = digits[n&0xf]
		n >>= 4
	}
	return string(b[:])
}

// StartSpan opens a span named name. If ctx carries a span the new span
// joins its trace as a child; otherwise a fresh trace begins. The returned
// context carries the new span for further nesting. On a nil tracer both
// returns are no-ops (ctx unchanged, nil span).
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return t.StartSpanAt(ctx, name, t.now())
}

// StartSpanAt is StartSpan with an explicit start time, letting hot paths
// that already read the clock avoid a second (possibly lock-guarded,
// under a simulated clock) read per child span.
func (t *Tracer) StartSpanAt(ctx context.Context, name string, at time.Time) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == unsampled {
		return ctx, nil
	}
	s := &Span{tracer: t, Name: name, Start: at}
	if parent != nil {
		s.TraceID = parent.TraceID
		s.ParentID = parent.SpanID
	} else {
		s.TraceID = seqID('t', t.traceSeq.Add(1))
	}
	s.SpanID = seqID('s', t.spanSeq.Add(1))
	return ContextWithSpan(ctx, s), s
}

// StartSpanRemote opens a span that continues a trace propagated from
// another process (the X-Trace-Id / X-Parent-Span headers the HTTP
// transports carry). Empty traceID falls back to StartSpan semantics.
func (t *Tracer) StartSpanRemote(ctx context.Context, name, traceID, parentID string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if traceID == "" {
		return t.StartSpan(ctx, name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Span{
		tracer:   t,
		Name:     name,
		Start:    t.now(),
		TraceID:  traceID,
		ParentID: parentID,
		SpanID:   seqID('s', t.spanSeq.Add(1)),
	}
	return ContextWithSpan(ctx, s), s
}

// SetAttr records a key/value attribute on the span. Credentials must be
// redacted first; the tokenflow analyzer treats this as a sink.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttr2 records two attributes with one lock acquisition and at most
// one slice growth — for hot paths whose spans carry a fixed attr pair
// (appending them separately would grow the attrs slice twice). The same
// redaction contract as SetAttr applies.
func (s *Span) SetAttr2(k1, v1, k2, v2 string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: k1, Value: v1}, Attr{Key: k2, Value: v2})
	s.mu.Unlock()
}

// Event records a point event, with optional alternating key/value attrs.
// Credentials must be redacted first; the tokenflow analyzer treats this
// as a sink.
func (s *Span) Event(name string, kv ...string) {
	if s == nil {
		return
	}
	ev := SpanEvent{Name: name, At: s.tracer.now()}
	for i := 0; i+1 < len(kv); i += 2 {
		ev.Attrs = append(ev.Attrs, Attr{Key: kv[i], Value: kv[i+1]})
	}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// End closes the span and hands it to the tracer's ring. Ending twice is
// a no-op, so `defer span.End()` composes with early explicit ends.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tracer.now())
}

// EndAt is End with an explicit end time (same rationale as StartSpanAt).
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = at
	s.mu.Unlock()
	s.tracer.record(s)
}

// record pushes a finished span into the ring, overwriting the oldest
// entry when full.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	if t.ring[t.next] != nil {
		t.dropped++
	}
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
}

// Dropped reports how many finished spans have been evicted from the ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanData is an exported snapshot of one finished span.
type SpanData struct {
	Trace  string      `json:"trace"`
	Span   string      `json:"span"`
	Parent string      `json:"parent,omitempty"`
	Name   string      `json:"name"`
	Start  time.Time   `json:"start"`
	End    time.Time   `json:"end"`
	DurUS  int64       `json:"dur_us"`
	Attrs  []Attr      `json:"attrs,omitempty"`
	Events []SpanEvent `json:"events,omitempty"`
}

// snapshot copies the span's recorded state.
func (s *Span) snapshot() SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := SpanData{
		Trace:  s.TraceID,
		Span:   s.SpanID,
		Parent: s.ParentID,
		Name:   s.Name,
		Start:  s.Start,
		End:    s.end,
		DurUS:  s.end.Sub(s.Start).Microseconds(),
	}
	d.Attrs = append(d.Attrs, s.attrs...)
	d.Events = append(d.Events, s.events...)
	return d
}

// Spans returns the finished spans currently retained, oldest first.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var ordered []*Span
	if t.filled {
		ordered = append(ordered, t.ring[t.next:]...)
		ordered = append(ordered, t.ring[:t.next]...)
	} else {
		ordered = append(ordered, t.ring[:t.next]...)
	}
	t.mu.Unlock()
	out := make([]SpanData, 0, len(ordered))
	for _, s := range ordered {
		out = append(out, s.snapshot())
	}
	return out
}

// WriteJSONL exports the retained spans as one JSON object per line,
// oldest first — the format /debug/traces serves and the timeline
// reconstruction tooling consumes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return t.WriteJSONLTrace(w, "")
}

// WriteJSONLTrace is WriteJSONL restricted to spans of one trace ID; an
// empty ID exports everything. Backs the ?trace=<id> filter on
// /debug/traces so a single request tree can be pulled out of a full ring.
func (t *Tracer) WriteJSONLTrace(w io.Writer, traceID string) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, d := range t.Spans() {
		if traceID != "" && d.Trace != traceID {
			continue
		}
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}
