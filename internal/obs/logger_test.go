package obs

import (
	"errors"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestLoggerLevelsAndFormat(t *testing.T) {
	var sb strings.Builder
	l := NewLogger("milker", &sb, LevelInfo)

	l.Debugf("dropped %d", 1) // below min: dropped before formatting
	l.Infof("posts=%d", 7)
	l.Warnf("slow")
	l.Errorf("boom: %v", errors.New("dial refused"))

	out := sb.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("debug line leaked past LevelInfo:\n%s", out)
	}
	for _, want := range []string{
		"INFO milker: posts=7\n",
		"WARN milker: slow\n",
		"ERROR milker: boom: dial refused\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLoggerTimestamps(t *testing.T) {
	var sb strings.Builder
	clock := simclock.NewSimulated(time.Date(2015, 11, 1, 0, 0, 0, 0, time.UTC))
	l := NewLogger("d", &sb, LevelDebug).WithClock(clock)
	l.Infof("hello")
	if want := "2015-11-01T00:00:00.000Z INFO d: hello\n"; sb.String() != want {
		t.Errorf("got %q, want %q", sb.String(), want)
	}
}

// TestLoggerRedactsArguments: every route a credential can take into a
// log line — string arg, error arg, URL arg, the format string itself —
// must come out masked.
func TestLoggerRedactsArguments(t *testing.T) {
	const tok = "EAACEdEose0cBA1234567890"
	var sb strings.Builder
	l := NewLogger("d", &sb, LevelDebug)

	l.Infof("joined with access_token=%s", tok)
	l.Errorf("req failed: %v", errors.New("GET /me?access_token="+tok+": 401"))
	u, _ := url.Parse("https://site.example/cb#access_token=" + tok + "&expires_in=0")
	l.Warnf("redirect %s", u)
	l.Debugf("submit token=" + tok)

	out := sb.String()
	if strings.Contains(out, tok) {
		t.Fatalf("raw credential reached the log:\n%s", out)
	}
	if !strings.Contains(out, "EAACEd***") {
		t.Errorf("expected masked prefix EAACEd*** in:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("want 4 lines, got %d:\n%s", lines, out)
	}
}

func TestLoggerFatalf(t *testing.T) {
	var sb strings.Builder
	code := -1
	l := NewLogger("d", &sb, LevelError)
	l.exit = func(c int) { code = c }
	l.Fatalf("token=%s invalid", "EAACEdEose0cBA")
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(sb.String(), "ERROR d: token=EAACEd*** invalid") {
		t.Errorf("fatal line wrong: %q", sb.String())
	}
}

func TestLoggerNil(t *testing.T) {
	var l *Logger
	l.Infof("no panic")  // no-op
	l.Errorf("no panic") // no-op
}
