package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Kind is a metric family's type, matching the Prometheus TYPE keywords.
type Kind string

// Metric family kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Sample is one series snapshot emitted by a collector at scrape time.
type Sample struct {
	// Labels are the label values, matching the family's label names.
	Labels []string
	Value  float64
}

// Registry holds named metric families. Registering the same family twice
// (same name, kind, and label names) returns the existing one, so
// subsystems can bind instruments independently; conflicting
// re-registration panics, as in Prometheus client libraries. A nil
// *Registry is a valid no-op: it yields nil instruments whose methods do
// nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label set.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, no +Inf

	mu     sync.Mutex
	series map[string]*series

	// collect, when set, replaces stored series at scrape time (used to
	// export externally-owned counters like shard contention).
	collect func() []Sample
}

// series is one label-value combination of a family.
type series struct {
	labelValues []string
	counter     *metrics.Counter // KindCounter
	gaugeBits   atomic.Uint64    // KindGauge (float64 bits)
	hist        *histogram       // KindHistogram
}

// histogram is a fixed-bucket latency histogram. Buckets hold
// non-cumulative counts; exposition accumulates them, and _count is the
// cumulative +Inf value — keeping a separate total here would add one
// more contended atomic per observation on the hot path for a number the
// scrape can derive.
type histogram struct {
	counts  []atomic.Int64 // len(buckets)+1; last is +Inf overflow
	sumBits atomic.Uint64
}

func (h *histogram) observe(buckets []float64, v float64) {
	i := sort.SearchFloat64s(buckets, v)
	h.counts[i].Add(1)
	if v == 0 {
		// Adding zero to the sum is the identity; skipping the CAS loop
		// matters because under the simulated clock a synchronous call
		// observes exactly 0 — i.e. this is the milking hot path.
		return
	}
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

const labelSep = "\xff"

func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || strings.Join(f.labels, labelSep) != strings.Join(labels, labelSep) {
			panic(fmt.Sprintf("obs: conflicting registration of %q", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// get returns (creating if needed) the series for the label values.
func (f *family) get(labelValues []string) *series {
	if f == nil {
		return nil
	}
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: %q expects %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		switch f.kind {
		case KindCounter:
			s.counter = &metrics.Counter{}
		case KindHistogram:
			s.hist = &histogram{counts: make([]atomic.Int64, len(f.buckets)+1)}
		}
		f.series[key] = s
	}
	return s
}

// CounterVec is a counter family. Bind label values once with With on hot
// paths; Add/Inc look the series up per call.
type CounterVec struct{ fam *family }

// Counter registers (or finds) a counter family.
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, KindCounter, labelNames, nil)}
}

// With returns the counter bound to the label values.
func (v *CounterVec) With(labelValues ...string) *BoundCounter {
	if v == nil {
		return nil
	}
	return &BoundCounter{c: v.fam.get(labelValues).counter}
}

// Add increments the series for the label values by delta.
func (v *CounterVec) Add(delta int64, labelValues ...string) {
	if v == nil {
		return
	}
	v.fam.get(labelValues).counter.Add(delta)
}

// Inc increments the series for the label values by one.
func (v *CounterVec) Inc(labelValues ...string) { v.Add(1, labelValues...) }

// BoundCounter is a counter pre-bound to its label values — a wrapped
// internal/metrics.Counter that tolerates nil (unobserved) instruments.
type BoundCounter struct{ c *metrics.Counter }

// Add increments by delta (panics if negative, per the Counter contract).
func (b *BoundCounter) Add(delta int64) {
	if b == nil {
		return
	}
	b.c.Add(delta)
}

// Inc increments by one.
func (b *BoundCounter) Inc() { b.Add(1) }

// Value returns the current count (0 for nil instruments).
func (b *BoundCounter) Value() int64 {
	if b == nil {
		return 0
	}
	return b.c.Value()
}

// GaugeVec is a gauge family.
type GaugeVec struct{ fam *family }

// Gauge registers (or finds) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, KindGauge, labelNames, nil)}
}

// Set sets the series for the label values to v.
func (g *GaugeVec) Set(v float64, labelValues ...string) {
	if g == nil {
		return
	}
	g.fam.get(labelValues).gaugeBits.Store(math.Float64bits(v))
}

// DefBuckets are the default latency buckets in seconds, spanning
// in-process Graph API calls (tens of microseconds) through slow HTTP
// round trips.
var DefBuckets = []float64{
	1e-05, 2.5e-05, 5e-05, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// HistogramVec is a histogram family.
type HistogramVec struct{ fam *family }

// Histogram registers (or finds) a histogram family. buckets are ascending
// upper bounds in seconds; nil selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{fam: r.register(name, help, KindHistogram, labelNames, buckets)}
}

// With returns the histogram bound to the label values.
func (v *HistogramVec) With(labelValues ...string) *BoundHistogram {
	if v == nil {
		return nil
	}
	return &BoundHistogram{buckets: v.fam.buckets, h: v.fam.get(labelValues).hist}
}

// Observe records v into the series for the label values.
func (v *HistogramVec) Observe(val float64, labelValues ...string) {
	if v == nil {
		return
	}
	v.fam.get(labelValues).hist.observe(v.fam.buckets, val)
}

// BoundHistogram is a histogram pre-bound to its label values.
type BoundHistogram struct {
	buckets []float64
	h       *histogram
}

// Observe records one value.
func (b *BoundHistogram) Observe(v float64) {
	if b == nil {
		return
	}
	b.h.observe(b.buckets, v)
}

// Collector registers a family whose series are produced by fn at scrape
// time — the bridge for counters owned elsewhere (per-shard lock
// contention, live token counts) so they appear in /metrics without
// double bookkeeping on the owner's hot path.
func (r *Registry) Collector(name, help string, kind Kind, labelNames []string, fn func() []Sample) {
	if r == nil {
		return
	}
	f := r.register(name, help, kind, labelNames, nil)
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}
