package obs

import (
	"math"
	"testing"
)

func quantileHist(t *testing.T, buckets []float64, values []float64) *BoundHistogram {
	t.Helper()
	r := NewRegistry()
	h := r.Histogram("q_test_seconds", "test", buckets).With()
	for _, v := range values {
		h.Observe(v)
	}
	return h
}

func TestQuantileLinearInterpolation(t *testing.T) {
	// 100 observations spread evenly through the 0–1 bucket: quantiles
	// interpolate linearly inside it.
	buckets := []float64{1, 2, 4}
	var values []float64
	for i := 0; i < 100; i++ {
		values = append(values, float64(i)/100)
	}
	h := quantileHist(t, buckets, values)
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.5", got)
	}
	if got := h.Quantile(0.99); math.Abs(got-0.99) > 1e-9 {
		t.Fatalf("p99 = %v, want 0.99", got)
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	// 50 observations in (0,1], 50 in (1,2]: the median sits at the
	// boundary and p75 interpolates halfway through the second bucket.
	buckets := []float64{1, 2, 4}
	var values []float64
	for i := 0; i < 50; i++ {
		values = append(values, 0.5, 1.5)
	}
	h := quantileHist(t, buckets, values)
	if got := h.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("p75 = %v, want 1.5", got)
	}
	if got := h.Quantile(1.0); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("p100 = %v, want 2.0", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	buckets := []float64{1, 2}
	empty := quantileHist(t, buckets, nil)
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	// Everything lands in the +Inf overflow bucket: the estimate clamps
	// to the last finite bound instead of inventing an infinite latency.
	over := quantileHist(t, buckets, []float64{10, 20, 30})
	if got := over.Quantile(0.99); got != 2 {
		t.Fatalf("overflow p99 = %v, want clamp to 2", got)
	}
	var nilH *BoundHistogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram p50 = %v", got)
	}
}

func TestSnapshotMatchesObservations(t *testing.T) {
	h := quantileHist(t, []float64{1, 2}, []float64{0.5, 1.5, 3})
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("Count = %d", s.Count)
	}
	if math.Abs(s.Sum-5.0) > 1e-9 {
		t.Fatalf("Sum = %v", s.Sum)
	}
	wantCounts := []int64{1, 1, 1} // one per bucket incl. overflow
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("Counts = %v", s.Counts)
	}
	for i, c := range wantCounts {
		if s.Counts[i] != c {
			t.Fatalf("Counts = %v, want %v", s.Counts, wantCounts)
		}
	}
	// Snapshot quantile agrees with the live call.
	if a, b := s.Quantile(0.5), h.Quantile(0.5); a != b {
		t.Fatalf("snapshot p50 %v != live p50 %v", a, b)
	}
}
