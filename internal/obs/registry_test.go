package obs

import (
	"strings"
	"testing"
)

// TestWriteTextGolden locks down the exposition format end to end:
// family ordering, series ordering, histogram cumulative-bucket math,
// +Inf/_sum/_count lines, and label-value escaping. Scrape tests
// elsewhere grep this output, so the exact shape is load-bearing.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()

	likes := r.Counter("likes_total", "Likes delivered, by network.", "network")
	likes.Add(7, "official-liker")
	likes.Inc("hublaa")

	r.Gauge("pool_size", "Live tokens in the pool.", "network").Set(1024, "hublaa")

	// Observations chosen to be exactly representable in binary so the
	// _sum line is byte-stable.
	h := r.Histogram("latency_seconds", "Call latency.", []float64{0.01, 0.1, 1}, "op")
	h.Observe(0.0078125, "like")
	h.Observe(0.0625, "like")
	h.Observe(0.0625, "like")
	h.Observe(4, "like")

	r.Counter("weird_total", `Escape \ test.`, "k").Inc("a\\b\"c\nd")

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP latency_seconds Call latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{op="like",le="0.01"} 1
latency_seconds_bucket{op="like",le="0.1"} 3
latency_seconds_bucket{op="like",le="1"} 3
latency_seconds_bucket{op="like",le="+Inf"} 4
latency_seconds_sum{op="like"} 4.1328125
latency_seconds_count{op="like"} 4
# HELP likes_total Likes delivered, by network.
# TYPE likes_total counter
likes_total{network="hublaa"} 1
likes_total{network="official-liker"} 7
# HELP pool_size Live tokens in the pool.
# TYPE pool_size gauge
pool_size{network="hublaa"} 1024
# HELP weird_total Escape \\ test.
# TYPE weird_total counter
weird_total{k="a\\b\"c\nd"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryReRegister verifies that two subsystems binding the same
// family (same name, kind, labels) share series, and that a conflicting
// shape panics instead of silently forking the data.
func TestRegistryReRegister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("defense_actions_total", "Defense actions.", "countermeasure", "action")
	b := r.Counter("defense_actions_total", "Defense actions.", "countermeasure", "action")
	a.Inc("synchrotrap", "deploy")
	b.Inc("synchrotrap", "deploy")
	if got := a.With("synchrotrap", "deploy").Value(); got != 2 {
		t.Errorf("shared series = %d, want 2", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.Counter("defense_actions_total", "Defense actions.", "other")
}

func TestRegistryCollector(t *testing.T) {
	r := NewRegistry()
	r.Collector("shard_lock_total", "Lock acquisitions.", KindCounter, []string{"shard", "outcome"},
		func() []Sample {
			return []Sample{
				{Labels: []string{"1", "fast"}, Value: 9},
				{Labels: []string{"0", "contended"}, Value: 2},
			}
		})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP shard_lock_total Lock acquisitions.
# TYPE shard_lock_total counter
shard_lock_total{shard="0",outcome="contended"} 2
shard_lock_total{shard="1",outcome="fast"} 9
`
	if got := b.String(); got != want {
		t.Errorf("collector exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestNilRegistry exercises every instrument path on a nil registry: all
// must be silent no-ops so uninstrumented construction works.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(3, "v")
	c.With().Inc()
	if c.With().Value() != 0 {
		t.Error("nil bound counter Value != 0")
	}
	r.Gauge("y", "").Set(1)
	h := r.Histogram("z", "", nil)
	h.Observe(1)
	h.With().Observe(1)
	r.Collector("w", "", KindCounter, nil, nil)
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteText: %v", err)
	}
}

func TestCounterPanicsOnNegative(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	r.Counter("n_total", "").Add(-1)
}
