// Package obs is the reproduction's observability layer: context-propagated
// tracing, a metrics registry with Prometheus text exposition, and the HTTP
// surfaces (/metrics, /debug/traces, net/http/pprof) the daemons mount.
//
// The paper's contribution is *measurement* — attributing millions of likes
// to tokens, accounts, and countermeasure phases on a precise timeline
// (Figures 4–7). This package gives the reproduction the same property at
// runtime: one like request can be followed from OAuth token validation
// through Graph API dispatch, shard locking, collusion-network delivery,
// and the defense stack, and every hot-path subsystem exports counters the
// perf work (batched delivery, adaptive shards, contention sweeps) reports
// against.
//
// Three design rules hold everywhere:
//
//   - Clock injection. Spans are timed via the injected simclock.Clock, so
//     a simulated 75-day countermeasure campaign and a wall-clock daemon
//     both produce coherent traces.
//   - Bounded cardinality and memory. Label sets are fixed per family,
//     HTTP endpoints are normalized before labelling, and the trace buffer
//     is a fixed-capacity ring — instrumentation never grows without bound.
//   - No raw credentials. Span attributes and event fields are taint sinks
//     for the tokenflow analyzer: bearer tokens must pass through
//     internal/redact before entering a trace.
//
// Everything is stdlib-only and nil-safe: a nil *Observer (or nil Tracer /
// Registry / span) turns every call into a no-op, so instrumented code
// never branches on whether observability is wired up.
package obs

import (
	"repro/internal/simclock"
)

// Observer bundles the pillars a subsystem needs: a Tracer for spans, a
// Registry for metrics, and an AllocMeter for per-hot-path allocation
// accounting. Subsystems receive one via SetObserver-style wiring from the
// composition root (internal/platform).
type Observer struct {
	Tracer  *Tracer
	Metrics *Registry
	Allocs  *AllocMeter
}

// New returns an Observer whose tracer reads the given clock and keeps the
// default number of finished spans.
func New(clock simclock.Clock) *Observer {
	return NewFor(clock, DefaultPlatformLabel)
}

// NewFor is New with an explicit platform label for the allocation
// meter's families; the composition root passes its provider's name so
// scale-mode dashboards split allocs-per-op by platform.
func NewFor(clock simclock.Clock, platform string) *Observer {
	o := &Observer{
		Tracer:  NewTracer(clock, DefaultTraceCapacity),
		Metrics: NewRegistry(),
	}
	o.Allocs = NewAllocMeterFor(o.Metrics, platform)
	o.Metrics.Collector("traces_dropped_total",
		"Finished spans evicted from the trace ring before export.",
		KindCounter, nil, func() []Sample {
			return []Sample{{Value: float64(o.Tracer.Dropped())}}
		})
	return o
}

// T returns the observer's tracer; nil observers have a nil tracer, which
// is itself a valid no-op tracer.
func (o *Observer) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// M returns the observer's registry; nil observers have a nil registry,
// which registers nothing and yields no-op instruments.
func (o *Observer) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// A returns the observer's allocation meter; nil observers have a nil
// meter, which measures nothing at zero cost.
func (o *Observer) A() *AllocMeter {
	if o == nil {
		return nil
	}
	return o.Allocs
}
