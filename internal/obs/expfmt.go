package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteText serializes every family in Prometheus text exposition format
// (version 0.0.4). Output is deterministic: families sort by name, series
// by label values, so golden tests and diff-based scrape checks are stable.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}

	f.mu.Lock()
	collect := f.collect
	sers := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		sers = append(sers, s)
	}
	f.mu.Unlock()

	if collect != nil {
		samples := collect()
		sort.Slice(samples, func(i, j int) bool {
			return lessStrings(samples[i].Labels, samples[j].Labels)
		})
		for _, s := range samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(f.labels, s.Labels), formatFloat(s.Value)); err != nil {
				return err
			}
		}
		return nil
	}

	sort.Slice(sers, func(i, j int) bool {
		return lessStrings(sers[i].labelValues, sers[j].labelValues)
	})
	for _, s := range sers {
		switch f.kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(f.labels, s.labelValues), s.counter.Value()); err != nil {
				return err
			}
		case KindGauge:
			v := math.Float64frombits(s.gaugeBits.Load())
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(f.labels, s.labelValues), formatFloat(v)); err != nil {
				return err
			}
		case KindHistogram:
			if err := f.writeHistogram(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram emits cumulative _bucket lines (ending in le="+Inf"),
// then _sum and _count.
func (f *family) writeHistogram(w io.Writer, s *series) error {
	var cum int64
	for i, ub := range f.buckets {
		cum += s.hist.counts[i].Load()
		labels := formatLabels(append(f.labels, "le"), append(append([]string(nil), s.labelValues...), formatFloat(ub)))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labels, cum); err != nil {
			return err
		}
	}
	cum += s.hist.counts[len(f.buckets)].Load()
	labels := formatLabels(append(f.labels, "le"), append(append([]string(nil), s.labelValues...), "+Inf"))
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labels, cum); err != nil {
		return err
	}
	sum := math.Float64frombits(s.hist.sumBits.Load())
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(f.labels, s.labelValues), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(f.labels, s.labelValues), cum)
	return err
}

// formatLabels renders {name="value",...}, or "" with no labels. Label
// values escape backslash, double-quote, and newline per the exposition
// spec.
func formatLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func lessStrings(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
