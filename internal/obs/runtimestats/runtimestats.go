// Package runtimestats exposes the Go runtime's memory, GC, and scheduler
// state as obs metric families and point-in-time snapshots.
//
// The paper's countermeasures were tuned against measured traffic volumes
// (Table 4, Fig. 5); the reproduction's scale mode likewise needs the
// resource side measured before the hot paths can be made allocation-free
// (top ROADMAP item). Two read paths with very different costs are kept
// deliberately separate:
//
//   - Scrape-time collectors read individual runtime/metrics counters.
//     These do not stop the world and cost microseconds, so /metrics can
//     be polled aggressively with no effect on the load under test.
//   - Sampler.Sample calls runtime.ReadMemStats (a brief stop-the-world)
//     plus a runtime/metrics histogram read. It runs at human frequency —
//     per retention sweep in `repro scale`, every few seconds in the
//     daemons — and feeds the GC-pause histogram and rate gauges that
//     need deltas between consecutive readings.
//
// The clock is injected (simclock.Clock) like everywhere else in the
// tree, so alloc-rate windows are coherent with however the surrounding
// system tells time.
package runtimestats

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simclock"
)

// Runtime metric names read by the scrape-time collectors.
const (
	mGoroutines   = "/sched/goroutines:goroutines"
	mHeapBytes    = "/memory/classes/heap/objects:bytes"
	mHeapObjects  = "/gc/heap/objects:objects"
	mSysBytes     = "/memory/classes/total:bytes"
	mGCCycles     = "/gc/cycles/total:gc-cycles"
	mMallocs      = "/gc/heap/allocs:objects"
	mAllocBytes   = "/gc/heap/allocs:bytes"
	mMutexWait    = "/sync/mutex/wait/total:seconds"
	mSchedLatency = "/sched/latencies:seconds"
)

// gcPauseBuckets bound the GC-pause histogram: sub-10µs pauses (healthy
// concurrent GC) through the >10ms stalls that would blow the like-path
// p99 SLO.
var gcPauseBuckets = []float64{
	1e-06, 2.5e-06, 5e-06, 1e-05, 2.5e-05, 5e-05,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.1,
}

// Snapshot is one point-in-time reading of the runtime, as embedded in
// the per-sweep scale report. Rates cover the window since the previous
// Sample on the same Sampler (zero on the first).
type Snapshot struct {
	At               time.Time     `json:"at"`
	Goroutines       int           `json:"goroutines"`
	HeapAllocBytes   uint64        `json:"heap_alloc_bytes"`
	HeapObjects      uint64        `json:"heap_objects"`
	SysBytes         uint64        `json:"sys_bytes"`
	TotalAllocBytes  uint64        `json:"total_alloc_bytes"`
	Mallocs          uint64        `json:"mallocs"`
	GCCycles         uint32        `json:"gc_cycles"`
	GCPauseTotal     time.Duration `json:"gc_pause_total"`
	LastGCPause      time.Duration `json:"last_gc_pause"`
	AllocBytesPerSec float64       `json:"alloc_bytes_per_sec"`
	MallocsPerSec    float64       `json:"mallocs_per_sec"`
	SchedLatencyP50  time.Duration `json:"sched_latency_p50"`
	SchedLatencyP99  time.Duration `json:"sched_latency_p99"`
}

// Sampler owns the delta-based families (GC-pause histogram, alloc-rate
// gauges) and produces Snapshots. Safe for concurrent use; a nil *Sampler
// is a valid no-op whose Sample returns a zero Snapshot.
type Sampler struct {
	clock simclock.Clock

	gcPause   *obs.HistogramVec
	allocRate *obs.GaugeVec
	lastPause *obs.GaugeVec

	mu        sync.Mutex
	prevAt    time.Time
	prevAlloc uint64
	prevMall  uint64
	lastNumGC uint32
	started   bool
	stop      chan struct{}
	done      chan struct{}
}

// Register installs the runtime families on reg and returns a Sampler for
// the delta-based ones. The scrape-time collectors are live immediately;
// call Sample (or Start) to populate the histogram and rate gauges. A nil
// clock defaults to real time.
func Register(reg *obs.Registry, clock simclock.Clock) *Sampler {
	if clock == nil {
		clock = simclock.Real{}
	}
	registerCollectors(reg)
	return &Sampler{
		clock: clock,
		gcPause: reg.Histogram("runtime_gc_pause_seconds",
			"Stop-the-world GC pause durations observed by the sampler.",
			gcPauseBuckets),
		allocRate: reg.Gauge("runtime_alloc_bytes_per_second",
			"Heap allocation rate over the last sampling window."),
		lastPause: reg.Gauge("runtime_last_gc_pause_seconds",
			"Duration of the most recent GC stop-the-world pause."),
	}
}

// registerCollectors wires the cheap scrape-time families.
func registerCollectors(reg *obs.Registry) {
	gauge := func(name, help, metric string) {
		reg.Collector(name, help, obs.KindGauge, nil, func() []obs.Sample {
			return []obs.Sample{{Value: readMetric(metric)}}
		})
	}
	counter := func(name, help, metric string) {
		reg.Collector(name, help, obs.KindCounter, nil, func() []obs.Sample {
			return []obs.Sample{{Value: readMetric(metric)}}
		})
	}
	gauge("runtime_goroutines", "Live goroutines.", mGoroutines)
	gauge("runtime_heap_alloc_bytes", "Bytes of live heap objects.", mHeapBytes)
	gauge("runtime_heap_objects", "Live heap objects.", mHeapObjects)
	gauge("runtime_sys_bytes", "Total bytes obtained from the OS.", mSysBytes)
	counter("runtime_gc_cycles_total", "Completed GC cycles.", mGCCycles)
	counter("runtime_mallocs_total", "Cumulative heap allocations.", mMallocs)
	counter("runtime_alloc_bytes_total", "Cumulative heap bytes allocated.", mAllocBytes)
	counter("runtime_mutex_wait_seconds_total",
		"Cumulative time goroutines have spent blocked on sync primitives.", mMutexWait)
	reg.Collector("runtime_sched_latency_seconds",
		"Approximate scheduling latency quantiles since process start.",
		obs.KindGauge, []string{"quantile"}, func() []obs.Sample {
			h := readHistogram(mSchedLatency)
			return []obs.Sample{
				{Labels: []string{"0.5"}, Value: histQuantile(h, 0.5)},
				{Labels: []string{"0.99"}, Value: histQuantile(h, 0.99)},
			}
		})
}

// readMetric reads one runtime/metrics counter as a float64.
func readMetric(name string) float64 {
	var buf [1]metrics.Sample
	buf[0].Name = name
	metrics.Read(buf[:])
	switch buf[0].Value.Kind() {
	case metrics.KindUint64:
		return float64(buf[0].Value.Uint64())
	case metrics.KindFloat64:
		return buf[0].Value.Float64()
	default:
		return 0
	}
}

// readHistogram reads one runtime/metrics histogram (nil if unsupported).
func readHistogram(name string) *metrics.Float64Histogram {
	var buf [1]metrics.Sample
	buf[0].Name = name
	metrics.Read(buf[:])
	if buf[0].Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return buf[0].Value.Float64Histogram()
}

// histQuantile estimates quantile q from a runtime histogram by walking
// cumulative bucket counts and reporting the crossed bucket's upper bound
// (conservative: never under-reports latency).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= rank {
			// Bucket i spans (Buckets[i], Buckets[i+1]].
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) { // overflow bucket: report its lower bound
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// Sample takes one full reading (runtime.ReadMemStats stop-the-world
// included), feeds the GC-pause histogram and rate gauges, and returns
// the snapshot. Call at sweep/report frequency, not per operation.
func (s *Sampler) Sample() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	now := s.clock.Now()

	snap := Snapshot{
		At:              now,
		Goroutines:      runtime.NumGoroutine(),
		HeapAllocBytes:  ms.HeapAlloc,
		HeapObjects:     ms.HeapObjects,
		SysBytes:        ms.Sys,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		GCCycles:        ms.NumGC,
		GCPauseTotal:    time.Duration(ms.PauseTotalNs),
	}
	if ms.NumGC > 0 {
		snap.LastGCPause = time.Duration(ms.PauseNs[(ms.NumGC+255)%256])
	}
	if h := readHistogram(mSchedLatency); h != nil {
		snap.SchedLatencyP50 = time.Duration(histQuantile(h, 0.5) * float64(time.Second))
		snap.SchedLatencyP99 = time.Duration(histQuantile(h, 0.99) * float64(time.Second))
	}

	s.mu.Lock()
	// Feed pauses of GC cycles completed since the previous sample into
	// the histogram. PauseNs is a 256-entry ring indexed (n+255)%256 for
	// cycle n; if more than 256 cycles elapsed the overwritten ones are
	// unrecoverable, so clamp to the retained window.
	first := s.lastNumGC
	if ms.NumGC > 256 && first < ms.NumGC-256 {
		first = ms.NumGC - 256
	}
	for n := first + 1; n <= ms.NumGC; n++ {
		s.gcPause.Observe(float64(ms.PauseNs[(n+255)%256]) / 1e9)
	}
	s.lastNumGC = ms.NumGC

	if !s.prevAt.IsZero() {
		if dt := now.Sub(s.prevAt).Seconds(); dt > 0 {
			snap.AllocBytesPerSec = float64(ms.TotalAlloc-s.prevAlloc) / dt
			snap.MallocsPerSec = float64(ms.Mallocs-s.prevMall) / dt
		}
	}
	s.prevAt, s.prevAlloc, s.prevMall = now, ms.TotalAlloc, ms.Mallocs
	s.mu.Unlock()

	s.allocRate.Set(snap.AllocBytesPerSec)
	s.lastPause.Set(snap.LastGCPause.Seconds())
	return snap
}

// Start launches a background goroutine sampling every interval until
// Stop. Starting an already-started sampler is a no-op.
func (s *Sampler) Start(interval time.Duration) {
	if s == nil || interval <= 0 {
		return
	}
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stop, s.done = stop, done
	s.mu.Unlock()

	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-s.clock.After(interval):
				s.Sample()
			}
		}
	}()
}

// Stop halts the background goroutine and waits for it to exit. Stopping
// a never-started (or already-stopped) sampler is a no-op.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
}
