package runtimestats

import (
	"math"
	"runtime/metrics"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simclock"
)

// TestFamiliesDeterministic scrapes a freshly-registered registry and
// asserts every runtime family is present with the right TYPE — the
// family set and kinds are part of the /metrics contract the dashboards
// and the scale report build on, even though the values are live.
func TestFamiliesDeterministic(t *testing.T) {
	reg := obs.NewRegistry()
	s := Register(reg, simclock.Real{})
	s.Sample() // populate the sampler-fed gauges

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	want := []struct{ family, kind string }{
		{"runtime_goroutines", "gauge"},
		{"runtime_heap_alloc_bytes", "gauge"},
		{"runtime_heap_objects", "gauge"},
		{"runtime_sys_bytes", "gauge"},
		{"runtime_gc_cycles_total", "counter"},
		{"runtime_mallocs_total", "counter"},
		{"runtime_alloc_bytes_total", "counter"},
		{"runtime_mutex_wait_seconds_total", "counter"},
		{"runtime_sched_latency_seconds", "gauge"},
		{"runtime_gc_pause_seconds", "histogram"},
		{"runtime_alloc_bytes_per_second", "gauge"},
		{"runtime_last_gc_pause_seconds", "gauge"},
	}
	for _, w := range want {
		typeLine := "# TYPE " + w.family + " " + w.kind
		if !strings.Contains(out, typeLine) {
			t.Errorf("scrape missing %q", typeLine)
		}
	}
	// The quantile-labelled family must carry both series.
	for _, series := range []string{
		`runtime_sched_latency_seconds{quantile="0.5"}`,
		`runtime_sched_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("scrape missing series %q", series)
		}
	}
}

// TestSampleValuesSane exercises one snapshot: a live process must have
// goroutines, a nonzero heap, and cumulative allocations, and a second
// sample after allocating must report a positive alloc rate.
func TestSampleValuesSane(t *testing.T) {
	clock := simclock.NewSimulated(time.Unix(0, 0))
	s := Register(obs.NewRegistry(), clock)

	snap := s.Sample()
	if snap.Goroutines < 1 {
		t.Errorf("Goroutines = %d, want >= 1", snap.Goroutines)
	}
	if snap.HeapAllocBytes == 0 || snap.TotalAllocBytes == 0 || snap.Mallocs == 0 {
		t.Errorf("zero heap stats: %+v", snap)
	}
	if snap.AllocBytesPerSec != 0 {
		t.Errorf("first sample AllocBytesPerSec = %v, want 0 (no window yet)", snap.AllocBytesPerSec)
	}

	sink := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	clock.Advance(time.Second)
	snap2 := s.Sample()
	if snap2.AllocBytesPerSec <= 0 {
		t.Errorf("AllocBytesPerSec = %v after allocating ~1MiB over 1s, want > 0", snap2.AllocBytesPerSec)
	}
	if snap2.Mallocs < snap.Mallocs {
		t.Errorf("Mallocs went backwards: %d -> %d", snap.Mallocs, snap2.Mallocs)
	}
	if !snap2.At.After(snap.At) {
		t.Errorf("At not advancing: %v -> %v", snap.At, snap2.At)
	}
}

// TestStartStopRace hammers Start/Stop/Sample/scrape concurrently; the
// race detector is the assertion. Start/Stop idempotency is checked on
// the side.
func TestStartStopRace(t *testing.T) {
	reg := obs.NewRegistry()
	s := Register(reg, simclock.Real{})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				s.Start(time.Millisecond)
				s.Sample()
				s.Stop()
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				var sb strings.Builder
				_ = reg.WriteText(&sb)
			}
		}()
	}
	wg.Wait()
	s.Stop() // stopping a stopped sampler is a no-op
}

// TestStartSamplesInBackground proves the background goroutine actually
// samples: under a real clock with a tiny interval the alloc-rate gauge
// becomes populated without any manual Sample call.
func TestStartSamplesInBackground(t *testing.T) {
	reg := obs.NewRegistry()
	s := Register(reg, simclock.Real{})
	s.Start(time.Millisecond)
	defer s.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		sampled := !s.prevAt.IsZero()
		s.mu.Unlock()
		if sampled {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background sampler never ran within 2s")
}

// TestNilSampler: the nil no-op contract.
func TestNilSampler(t *testing.T) {
	var s *Sampler
	if snap := s.Sample(); snap != (Snapshot{}) {
		t.Errorf("nil Sample() = %+v, want zero", snap)
	}
	s.Start(time.Second) // must not panic
	s.Stop()
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{90, 9, 1},
		Buckets: []float64{0, 1e-6, 1e-3, math.Inf(1)},
	}
	if got := histQuantile(h, 0.5); got != 1e-6 {
		t.Errorf("p50 = %v, want 1e-6", got)
	}
	if got := histQuantile(h, 0.95); got != 1e-3 {
		t.Errorf("p95 = %v, want 1e-3", got)
	}
	// p100 lands in the overflow bucket, whose lower bound is reported.
	if got := histQuantile(h, 1.0); got != 1e-3 {
		t.Errorf("p100 = %v, want 1e-3 (overflow lower bound)", got)
	}
	if got := histQuantile(nil, 0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
	if got := histQuantile(&metrics.Float64Histogram{}, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
