package obs

import "math"

// Histogram read API. The SLO reports (scale-mode p50/p99 like latency)
// are computed from the same bucketed histograms /metrics exposes, using
// the standard Prometheus histogram_quantile estimation: find the bucket
// the requested rank falls in and interpolate linearly inside it. The
// estimate is deterministic for a fixed set of observations, which is
// what makes the fixed-seed SLO report byte-stable.

// HistogramSnapshot is a point-in-time copy of one histogram series.
type HistogramSnapshot struct {
	// UpperBounds are the bucket upper bounds (ascending, no +Inf).
	UpperBounds []float64
	// Counts are per-bucket (non-cumulative) counts; len(UpperBounds)+1
	// entries, the last being the +Inf overflow bucket.
	Counts []int64
	// Count is the total number of observations.
	Count int64
	// Sum is the sum of observed values.
	Sum float64
}

// Snapshot copies the histogram's current state. Nil instruments yield a
// zero snapshot.
func (b *BoundHistogram) Snapshot() HistogramSnapshot {
	if b == nil || b.h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		UpperBounds: b.buckets,
		Counts:      make([]int64, len(b.h.counts)),
	}
	for i := range b.h.counts {
		c := b.h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(b.h.sumBits.Load())
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed values
// by linear interpolation within the bucket the rank falls in, exactly as
// Prometheus's histogram_quantile does. Ranks landing in the +Inf
// overflow bucket clamp to the highest finite upper bound. A histogram
// with no observations yields 0.
func (b *BoundHistogram) Quantile(q float64) float64 {
	return b.Snapshot().Quantile(q)
}

// Quantile estimates the q-quantile from the snapshot; see
// BoundHistogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.UpperBounds) {
			// Overflow bucket: clamp to the last finite bound.
			if len(s.UpperBounds) == 0 {
				return 0
			}
			return s.UpperBounds[len(s.UpperBounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.UpperBounds[i-1]
		}
		upper := s.UpperBounds[i]
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	if len(s.UpperBounds) == 0 {
		return 0
	}
	return s.UpperBounds[len(s.UpperBounds)-1]
}
