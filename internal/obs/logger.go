package obs

import (
	"fmt"
	"io"
	"net/url"
	"os"
	"sync"

	"repro/internal/redact"
	"repro/internal/simclock"
)

// Level is a log severity. Messages below a Logger's minimum are dropped
// before formatting, so disabled debug logging costs one comparison.
type Level int8

// Severities, in ascending order.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the fixed-width upper-case name used in log lines.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return "LOG"
	}
}

// Logger is the daemons' leveled logger. It exists for one reason beyond
// levels: every argument and the final formatted line are forced through
// internal/redact before reaching the writer, so a token that slips into
// an error string or URL cannot reach a log file intact. The tokenflow
// analyzer additionally treats the *f methods as credential sinks, the
// same as Span.SetAttr — static analysis catches what it can, and the
// runtime scrubbing catches values that flow in dynamically.
//
// A nil *Logger is a valid no-op, except Fatalf, which still exits.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	min   Level
	name  string
	clock simclock.Clock
	exit  func(int) // Fatalf seam; defaults to os.Exit
}

// NewLogger returns a logger writing lines tagged with name to w,
// dropping messages below min. Lines carry no timestamp until a clock is
// attached with WithClock — consistent with the clock-injection rule
// (obs is a simulation-adjacent package and must not read ambient time).
func NewLogger(name string, w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, name: name, exit: os.Exit}
}

// WithClock attaches a clock for line timestamps and returns the logger.
func (l *Logger) WithClock(clock simclock.Clock) *Logger {
	if l != nil {
		l.clock = clock
	}
	return l
}

// scrubArg redacts one argument. URL-shaped values get structure-aware
// masking (userinfo dropped, fragment creds masked); errors are reduced
// to their scrubbed text. Everything else is left to the whole-line
// sweep in logf.
func scrubArg(a any) any {
	switch v := a.(type) {
	case *url.URL:
		return redact.URL(v)
	case url.Values:
		return redact.String(v.Encode())
	case error:
		if v == nil {
			return v
		}
		return redact.String(v.Error())
	default:
		return a
	}
}

func (l *Logger) logf(lv Level, format string, args ...any) {
	if l == nil || lv < l.min || l.w == nil {
		return
	}
	for i, a := range args {
		args[i] = scrubArg(a)
	}
	msg := redact.String(fmt.Sprintf(format, args...))
	var stamp string
	if l.clock != nil {
		stamp = l.clock.Now().UTC().Format("2006-01-02T15:04:05.000Z") + " "
	}
	l.mu.Lock()
	fmt.Fprintf(l.w, "%s%s %s: %s\n", stamp, lv, l.name, msg)
	l.mu.Unlock()
}

// Debugf logs at debug level. Arguments are redacted; see Logger.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at info level. Arguments are redacted; see Logger.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at warn level. Arguments are redacted; see Logger.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at error level. Arguments are redacted; see Logger.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

// Fatalf logs at error level and exits with status 1. Unlike the other
// methods it acts even on a nil logger (the process must still die).
func (l *Logger) Fatalf(format string, args ...any) {
	l.logf(LevelError, format, args...)
	if l != nil && l.exit != nil {
		l.exit(1)
		return
	}
	os.Exit(1)
}
