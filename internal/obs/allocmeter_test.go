package obs

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// scrapeValue extracts one series' value from a text exposition scrape.
func scrapeValue(t *testing.T, reg *Registry, series string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not in scrape:\n%s", series, sb.String())
	return 0
}

var allocSink any

// TestAllocMeterMeasuresForcedAllocs: a window around an op that
// allocates must report allocs_per_op > 0 and bytes to match.
func TestAllocMeterMeasuresForcedAllocs(t *testing.T) {
	reg := NewRegistry()
	m := NewAllocMeter(reg)
	m.SetSampleEvery(1)

	const ops = 10
	s := m.Begin(context.Background(), "forced")
	for i := 0; i < ops; i++ {
		allocSink = make([]byte, 4096)
	}
	s.End(ops)

	if got := scrapeValue(t, reg, `allocs_per_op{platform="default",op="forced"}`); got <= 0 {
		t.Errorf("allocs_per_op = %v, want > 0 after %d forced allocations", got, ops)
	}
	// Each op allocated 4096 bytes; the per-op byte figure must at least
	// reflect that (concurrent test allocations can only push it up).
	if got := scrapeValue(t, reg, `alloc_bytes_per_op{platform="default",op="forced"}`); got < 4096 {
		t.Errorf("alloc_bytes_per_op = %v, want >= 4096", got)
	}
	if got := scrapeValue(t, reg, `allocmeter_windows_total{platform="default",op="forced"}`); got != 1 {
		t.Errorf("allocmeter_windows_total = %v, want 1", got)
	}
}

// TestAllocMeterUnsampledZeroOverhead: under an UnsampledContext the
// meter must not allocate at all — the same guarantee tracing gives the
// non-sampled iterations of a delivery burst.
func TestAllocMeterUnsampledZeroOverhead(t *testing.T) {
	m := NewAllocMeter(NewRegistry())
	m.SetSampleEvery(1)
	ctx := UnsampledContext(context.Background())

	allocs := testing.AllocsPerRun(100, func() {
		s := m.Begin(ctx, "hot")
		s.End(1)
	})
	if allocs != 0 {
		t.Errorf("unsampled Begin/End allocated %v objects per run, want 0", allocs)
	}

	// A nil meter is equally free.
	var nilMeter *AllocMeter
	allocs = testing.AllocsPerRun(100, func() {
		s := nilMeter.Begin(context.Background(), "hot")
		s.End(1)
	})
	if allocs != 0 {
		t.Errorf("nil-meter Begin/End allocated %v objects per run, want 0", allocs)
	}
}

// TestAllocMeterStride: with SetSampleEvery(4), exactly 1 in 4 eligible
// windows is measured.
func TestAllocMeterStride(t *testing.T) {
	reg := NewRegistry()
	m := NewAllocMeter(reg)
	m.SetSampleEvery(4)

	for i := 0; i < 16; i++ {
		s := m.Begin(context.Background(), "strided")
		allocSink = make([]byte, 64)
		s.End(1)
	}
	if got := scrapeValue(t, reg, `allocmeter_windows_total{platform="default",op="strided"}`); got != 4 {
		t.Errorf("allocmeter_windows_total = %v, want 4 (16 calls / stride 4)", got)
	}
}

// TestSampledHelper pins the ctx gate the meter shares with tracing.
func TestSampledHelper(t *testing.T) {
	if !Sampled(nil) {
		t.Error("Sampled(nil) = false, want true (matches StartSpan)")
	}
	if !Sampled(context.Background()) {
		t.Error("Sampled(Background) = false, want true")
	}
	if Sampled(UnsampledContext(context.Background())) {
		t.Error("Sampled(UnsampledContext) = true, want false")
	}
	tr := NewTracer(nil, 8)
	ctx, span := tr.StartSpan(context.Background(), "x")
	if !Sampled(ctx) {
		t.Error("Sampled(span ctx) = false, want true")
	}
	span.End()
}

// TestAllocMeterPlatformLabel: a meter bound to a provider name labels
// its families with it, so multi-provider registries split cleanly.
func TestAllocMeterPlatformLabel(t *testing.T) {
	reg := NewRegistry()
	m := NewAllocMeterFor(reg, "pictogram")
	m.SetSampleEvery(1)
	s := m.Begin(context.Background(), "op")
	allocSink = make([]byte, 64)
	s.End(1)
	if got := scrapeValue(t, reg, `allocmeter_windows_total{platform="pictogram",op="op"}`); got != 1 {
		t.Errorf("allocmeter_windows_total{platform=pictogram} = %v, want 1", got)
	}
}
