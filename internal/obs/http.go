package obs

import (
	"net/http"
	"net/http/pprof"
)

// Trace-propagation headers carried by the HTTP transports. A client that
// holds an open span sets both; the serving middleware joins the trace via
// StartSpanRemote so one like stays on one trace ID across processes.
const (
	HeaderTraceID    = "X-Trace-Id"
	HeaderParentSpan = "X-Parent-Span"
)

// statusRecorder captures the status code written by the wrapped handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Middleware wraps next with request telemetry: a span named
// "<prefix>.request" joining any propagated trace, plus
// <prefix>_http_requests_total{endpoint,status} and
// <prefix>_http_request_seconds{endpoint}. endpointFn normalizes the URL
// path to a bounded label set (object IDs collapse to placeholders); nil
// uses the raw path. A nil Observer returns next unchanged.
func (o *Observer) Middleware(next http.Handler, prefix string, endpointFn func(path string) string) http.Handler {
	if o == nil {
		return next
	}
	if endpointFn == nil {
		endpointFn = func(path string) string { return path }
	}
	requests := o.M().Counter(prefix+"_http_requests_total",
		"HTTP requests served, by normalized endpoint and status code.",
		"endpoint", "status")
	latency := o.M().Histogram(prefix+"_http_request_seconds",
		"HTTP request latency in seconds, by normalized endpoint.",
		nil, "endpoint")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, span := o.T().StartSpanRemote(r.Context(), prefix+".request",
			r.Header.Get(HeaderTraceID), r.Header.Get(HeaderParentSpan))
		endpoint := endpointFn(r.URL.Path)
		span.SetAttr("method", r.Method)
		span.SetAttr("endpoint", endpoint)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := o.T().now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		elapsed := o.T().now().Sub(start)

		span.SetAttr("status", itoa(rec.status))
		span.End()
		requests.Inc(endpoint, itoa(rec.status))
		latency.Observe(elapsed.Seconds(), endpoint)
	})
}

// itoa avoids strconv on the request path for the common 3-digit case.
func itoa(n int) string {
	if n >= 100 && n < 1000 {
		return string([]byte{byte('0' + n/100), byte('0' + n/10%10), byte('0' + n%10)})
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if i == len(buf) {
		i--
		buf[i] = '0'
	}
	return string(buf[i:])
}

// MetricsHandler serves the registry in Prometheus text exposition format.
func (o *Observer) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.M().WriteText(w)
	})
}

// TracesHandler serves the retained spans as JSONL, oldest first. A
// ?trace=<id> query restricts the dump to one trace tree — with a 4096
// span ring, pulling a single request out of the full dump got unwieldy.
func (o *Observer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = o.T().WriteJSONLTrace(w, r.URL.Query().Get("trace"))
	})
}

// RegisterDebug mounts the observability surfaces on mux: /metrics,
// /debug/traces, and the net/http/pprof profiling endpoints.
func (o *Observer) RegisterDebug(mux *http.ServeMux) {
	mux.Handle("/metrics", o.MetricsHandler())
	mux.Handle("/debug/traces", o.TracesHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
