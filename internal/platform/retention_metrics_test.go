package platform

import (
	"strings"
	"testing"
	"time"

	"repro/internal/socialgraph"
)

// TestRetentionMetricFamilies: the retention counters and the retained-
// edges gauge are scrape-time collectors over store state, so a sweep
// must be visible on the next /metrics exposition without any explicit
// metric write.
func TestRetentionMetricFamilies(t *testing.T) {
	w := newWorld(t)
	w.p.Graph.SetRetentionWindow(time.Hour)
	for i, acct := range []socialgraph.Account{w.member, w.author} {
		at := t0.Add(time.Duration(i) * 90 * time.Minute) // one in, one out of the window
		if err := w.p.Graph.AddLike(acct.ID, w.post.ID, socialgraph.WriteMeta{At: at}); err != nil {
			t.Fatal(err)
		}
	}
	w.clock.Advance(150 * time.Minute)
	if res := w.p.Graph.RetentionSweep(w.clock.Now()); res.Likes != 1 {
		t.Fatalf("sweep = %+v, want exactly the out-of-window like evicted", res)
	}

	var b strings.Builder
	if err := w.p.Obs.M().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"socialgraph_retention_sweeps_total 1",
		`socialgraph_retention_evicted_total{class="like"} 1`,
		`socialgraph_retention_evicted_total{class="comment"} 0`,
		`socialgraph_retained_edges{class="like"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
