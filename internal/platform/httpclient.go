package platform

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/provider"
	"repro/internal/redact"
)

// HTTPClient implements Client over the platform's HTTP surface. It mimics
// the behaviour of the collusion network tooling: it walks the dialog,
// refuses to follow the final redirect, and scrapes the access token out
// of the Location fragment — the "view-source" trick of Figure 3.
type HTTPClient struct {
	base     string
	prov     provider.Provider
	maxBatch int
	http     *http.Client
}

// NewHTTPClient returns a Client speaking HTTP to the default provider's
// platform at baseURL.
func NewHTTPClient(baseURL string) *HTTPClient {
	return NewHTTPClientFor(provider.Default(), baseURL)
}

// NewHTTPClientFor returns a Client speaking the given provider's dialect
// to the platform at baseURL: error codes decode into the provider's kind
// space and batches chunk at the provider's op cap. baseURL may carry a
// path prefix (e.g. a Multi mount like http://host/pictogram).
func NewHTTPClientFor(prov provider.Provider, baseURL string) *HTTPClient {
	return &HTTPClient{
		base:     strings.TrimRight(baseURL, "/"),
		prov:     prov,
		maxBatch: prov.Limits().MaxBatchOps,
		http: &http.Client{
			Timeout: 30 * time.Second,
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
	}
}

// RemoteAPIError is a Graph API error received over HTTP. Code and Type
// are in the issuing provider's vocabulary; Kind is the provider-neutral
// classification the receiving client derived from Code.
type RemoteAPIError struct {
	Code    int
	Type    string
	Message string
	Kind    provider.ErrKind
}

// Error implements error.
func (e *RemoteAPIError) Error() string {
	return fmt.Sprintf("platform: (#%d) %s: %s", e.Code, e.Type, e.Message)
}

// apiError decodes a Graph API error envelope into an error value,
// classifying the provider-specific code into a neutral kind.
func (c *HTTPClient) apiError(resp *http.Response) error {
	var env struct {
		Error struct {
			Message string `json:"message"`
			Type    string `json:"type"`
			Code    int    `json:"code"`
		} `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Message == "" {
		return fmt.Errorf("platform: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return &RemoteAPIError{
		Code:    env.Error.Code,
		Type:    env.Error.Type,
		Message: env.Error.Message,
		Kind:    c.prov.KindOfCode(env.Error.Code),
	}
}

// AuthorizeImplicit implements Client by scraping the token from the
// dialog redirect fragment — the "copy the token from the address bar"
// workflow of Figure 3.
func (c *HTTPClient) AuthorizeImplicit(appID, redirectURI, accountID string, scopes []string) (string, error) {
	q := url.Values{}
	q.Set("client_id", appID)
	q.Set("redirect_uri", redirectURI)
	q.Set("response_type", "token")
	q.Set("account_id", accountID)
	q.Set("scope", strings.Join(scopes, ","))
	resp, err := c.http.Get(c.base + "/dialog/oauth?" + q.Encode())
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		return "", c.apiError(resp)
	}
	loc, err := url.Parse(resp.Header.Get("Location"))
	if err != nil {
		return "", err
	}
	frag, err := url.ParseQuery(loc.Fragment)
	if err != nil {
		return "", err
	}
	tok := frag.Get("access_token")
	if tok == "" {
		// The redirect fragment may carry other credentials even when
		// access_token is absent; never quote the raw URL into an error.
		return "", fmt.Errorf("platform: no access_token in redirect %q", redact.URL(loc))
	}
	return tok, nil
}

// AuthorizeCode implements CodeExchanger by walking the dialog with
// response_type=code and scraping the one-time code from the redirect
// query. No credential leaks here: the code is single-use and bound to
// the app, which is why code-flow-only providers resist milking.
func (c *HTTPClient) AuthorizeCode(appID, redirectURI, accountID string, scopes []string) (string, error) {
	q := url.Values{}
	q.Set("client_id", appID)
	q.Set("redirect_uri", redirectURI)
	q.Set("response_type", "code")
	q.Set("account_id", accountID)
	q.Set("scope", strings.Join(scopes, ","))
	resp, err := c.http.Get(c.base + "/dialog/oauth?" + q.Encode())
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		return "", c.apiError(resp)
	}
	loc, err := url.Parse(resp.Header.Get("Location"))
	if err != nil {
		return "", err
	}
	code := loc.Query().Get("code")
	if code == "" {
		return "", fmt.Errorf("platform: no code in redirect %q", redact.URL(loc))
	}
	return code, nil
}

// ExchangeCode implements CodeExchanger against POST /oauth/access_token.
func (c *HTTPClient) ExchangeCode(appID, appSecret, redirectURI, code string) (string, error) {
	form := url.Values{
		"client_id":     {appID},
		"client_secret": {appSecret},
		"redirect_uri":  {redirectURI},
		"code":          {code},
	}
	resp, err := c.do(http.MethodPost, "/oauth/access_token", form, "")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", c.apiError(resp)
	}
	var body struct {
		AccessToken string `json:"access_token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	return body.AccessToken, nil
}

// do performs a form POST (or GET when form is nil) with source-IP
// attribution via X-Forwarded-For.
func (c *HTTPClient) do(method, path string, form url.Values, ip string) (*http.Response, error) {
	var req *http.Request
	var err error
	if method == http.MethodPost {
		req, err = http.NewRequest(method, c.base+path, strings.NewReader(form.Encode()))
		if err == nil {
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		}
	} else {
		u := c.base + path
		if len(form) > 0 {
			u += "?" + form.Encode()
		}
		req, err = http.NewRequest(method, u, nil)
	}
	if err != nil {
		return nil, err
	}
	if ip != "" {
		req.Header.Set("X-Forwarded-For", ip)
	}
	return c.http.Do(req)
}

// doCtx is do with trace propagation: the span carried by ctx (if any) is
// advertised via the X-Trace-Id / X-Parent-Span headers.
func (c *HTTPClient) doCtx(ctx context.Context, method, path string, form url.Values, ip string) (*http.Response, error) {
	var req *http.Request
	var err error
	if method == http.MethodPost {
		req, err = http.NewRequest(method, c.base+path, strings.NewReader(form.Encode()))
		if err == nil {
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		}
	} else {
		u := c.base + path
		if len(form) > 0 {
			u += "?" + form.Encode()
		}
		req, err = http.NewRequest(method, u, nil)
	}
	if err != nil {
		return nil, err
	}
	if ip != "" {
		req.Header.Set("X-Forwarded-For", ip)
	}
	if span := obs.SpanFromContext(ctx); span != nil {
		req.Header.Set(obs.HeaderTraceID, span.TraceID)
		req.Header.Set(obs.HeaderParentSpan, span.SpanID)
	}
	return c.http.Do(req)
}

// Me implements Client.
func (c *HTTPClient) Me(token, ip string) (Profile, error) {
	resp, err := c.do(http.MethodGet, "/me", url.Values{"access_token": {token}}, ip)
	if err != nil {
		return Profile{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Profile{}, c.apiError(resp)
	}
	var body struct {
		ID      string `json:"id"`
		Name    string `json:"name"`
		Country string `json:"country"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return Profile{}, err
	}
	return Profile{ID: body.ID, Name: body.Name, Country: body.Country}, nil
}

// Like implements Client.
func (c *HTTPClient) Like(token, objectID, ip string) error {
	return c.LikeCtx(nil, token, objectID, ip)
}

// LikeCtx implements ContextClient: when ctx carries a span, the request
// ships its trace ID in the propagation headers so the server-side span
// tree joins the caller's trace.
func (c *HTTPClient) LikeCtx(ctx context.Context, token, objectID, ip string) error {
	resp, err := c.doCtx(ctx, http.MethodPost, "/"+objectID+"/likes", url.Values{"access_token": {token}}, ip)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.apiError(resp)
	}
	return nil
}

// LikeBatch implements BatchClient over POST /batch, chunked at the
// provider's batch-op cap. Each op rides as one batched POST /{object}/likes
// with its own token, and its source IP travels in the op's source_ip
// field so attribution survives coalescing. A transport-level failure
// marks every op of the failed chunk with the same error.
func (c *HTTPClient) LikeBatch(ctx context.Context, objectID string, ops []BatchLike) []error {
	errs := make([]error, len(ops))
	for start := 0; start < len(ops); start += c.maxBatch {
		end := start + c.maxBatch
		if end > len(ops) {
			end = len(ops)
		}
		c.likeBatchChunk(ctx, objectID, ops[start:end], errs[start:end])
	}
	return errs
}

// likeBatchChunk fires one ≤50-op chunk and fills errs (aligned with ops).
func (c *HTTPClient) likeBatchChunk(ctx context.Context, objectID string, ops []BatchLike, errs []error) {
	type batchOp struct {
		Method      string `json:"method"`
		RelativeURL string `json:"relative_url"`
		Body        string `json:"body"`
		SourceIP    string `json:"source_ip,omitempty"`
	}
	batch := make([]batchOp, len(ops))
	for i, op := range ops {
		batch[i] = batchOp{
			Method:      http.MethodPost,
			RelativeURL: "/" + objectID + "/likes",
			Body:        "access_token=" + url.QueryEscape(op.Token),
			SourceIP:    op.IP,
		}
	}
	fail := func(err error) {
		for i := range errs {
			errs[i] = err
		}
	}
	payload, err := json.Marshal(batch)
	if err != nil {
		fail(err)
		return
	}
	resp, err := c.doCtx(ctx, http.MethodPost, "/batch", url.Values{"batch": {string(payload)}}, "")
	if err != nil {
		fail(err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(c.apiError(resp))
		return
	}
	var results []struct {
		Code int    `json:"code"`
		Body string `json:"body"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&results); err != nil {
		fail(err)
		return
	}
	if len(results) != len(ops) {
		fail(fmt.Errorf("platform: batch returned %d results for %d ops", len(results), len(ops)))
		return
	}
	for i, res := range results {
		if res.Code != http.StatusOK {
			errs[i] = c.batchOpError(res.Code, res.Body)
		}
	}
}

// batchOpError decodes one embedded batch result's error envelope.
func (c *HTTPClient) batchOpError(status int, body string) error {
	var env struct {
		Error struct {
			Message string `json:"message"`
			Type    string `json:"type"`
			Code    int    `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Message == "" {
		return fmt.Errorf("platform: HTTP %d: %s", status, strings.TrimSpace(body))
	}
	return &RemoteAPIError{
		Code:    env.Error.Code,
		Type:    env.Error.Type,
		Message: env.Error.Message,
		Kind:    c.prov.KindOfCode(env.Error.Code),
	}
}

// Comment implements Client.
func (c *HTTPClient) Comment(token, postID, message, ip string) (string, error) {
	return c.CommentCtx(nil, token, postID, message, ip)
}

// CommentCtx implements ContextClient.
func (c *HTTPClient) CommentCtx(ctx context.Context, token, postID, message, ip string) (string, error) {
	form := url.Values{"access_token": {token}, "message": {message}}
	resp, err := c.doCtx(ctx, http.MethodPost, "/"+postID+"/comments", form, ip)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", c.apiError(resp)
	}
	var body struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	return body.ID, nil
}

// Publish implements Client.
func (c *HTTPClient) Publish(token, message, ip string) (string, error) {
	form := url.Values{"access_token": {token}, "message": {message}}
	resp, err := c.do(http.MethodPost, "/me/feed", form, ip)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", c.apiError(resp)
	}
	var body struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	return body.ID, nil
}

// LikesOf implements Client. The likes edge is paginated server-side
// (Facebook-style `after` cursors); the client walks every page, the way
// the paper's crawlers collected complete liker lists.
func (c *HTTPClient) LikesOf(token, objectID string) ([]LikeRecord, error) {
	var out []LikeRecord
	after := ""
	for {
		form := url.Values{"access_token": {token}, "limit": {"100"}}
		if after != "" {
			form.Set("after", after)
		}
		resp, err := c.do(http.MethodGet, "/"+objectID+"/likes", form, "")
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			err := c.apiError(resp)
			resp.Body.Close()
			return nil, err
		}
		var body struct {
			Data []struct {
				ID   string `json:"id"`
				Time string `json:"time"`
			} `json:"data"`
			Paging struct {
				Cursors struct {
					After string `json:"after"`
				} `json:"cursors"`
			} `json:"paging"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		for _, d := range body.Data {
			at, _ := time.Parse("2006-01-02T15:04:05Z", d.Time)
			out = append(out, LikeRecord{AccountID: d.ID, At: at})
		}
		if body.Paging.Cursors.After == "" {
			return out, nil
		}
		after = body.Paging.Cursors.After
	}
}

// FeedOf implements Client via GET /me/feed.
func (c *HTTPClient) FeedOf(token string) ([]PostRecord, error) {
	resp, err := c.do(http.MethodGet, "/me/feed", url.Values{"access_token": {token}}, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.apiError(resp)
	}
	var body struct {
		Data []struct {
			ID      string `json:"id"`
			Message string `json:"message"`
			Time    string `json:"time"`
		} `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	out := make([]PostRecord, len(body.Data))
	for i, d := range body.Data {
		at, _ := time.Parse("2006-01-02T15:04:05Z", d.Time)
		out[i] = PostRecord{ID: d.ID, Message: d.Message, At: at}
	}
	return out, nil
}

// FriendsOf lists the token account's friends via the /me/friends edge
// (requires the user_friends scope).
func (c *HTTPClient) FriendsOf(token, ip string) ([]Profile, error) {
	resp, err := c.do(http.MethodGet, "/me/friends", url.Values{"access_token": {token}}, ip)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.apiError(resp)
	}
	var body struct {
		Data []struct {
			ID      string `json:"id"`
			Name    string `json:"name"`
			Country string `json:"country"`
		} `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	out := make([]Profile, len(body.Data))
	for i, d := range body.Data {
		out[i] = Profile{ID: d.ID, Name: d.Name, Country: d.Country}
	}
	return out, nil
}

// CommentsOf implements Client, walking the paginated comments edge.
func (c *HTTPClient) CommentsOf(token, postID string) ([]CommentRecord, error) {
	var out []CommentRecord
	after := ""
	for {
		form := url.Values{"access_token": {token}, "limit": {"100"}}
		if after != "" {
			form.Set("after", after)
		}
		resp, err := c.do(http.MethodGet, "/"+postID+"/comments", form, "")
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			err := c.apiError(resp)
			resp.Body.Close()
			return nil, err
		}
		var body struct {
			Data []struct {
				ID      string `json:"id"`
				From    string `json:"from"`
				Message string `json:"message"`
				Time    string `json:"time"`
			} `json:"data"`
			Paging struct {
				Cursors struct {
					After string `json:"after"`
				} `json:"cursors"`
			} `json:"paging"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		for _, d := range body.Data {
			at, _ := time.Parse("2006-01-02T15:04:05Z", d.Time)
			out = append(out, CommentRecord{ID: d.ID, AccountID: d.From, Message: d.Message, At: at})
		}
		if body.Paging.Cursors.After == "" {
			return out, nil
		}
		after = body.Paging.Cursors.After
	}
}
