package platform

import (
	"net/http"
	"sort"

	"repro/internal/netsim"
	"repro/internal/provider"
	"repro/internal/simclock"
)

// Multi is a registry of platforms, one per provider, sharing a clock and
// an Internet model. It models the world a cross-platform collusion
// network operates in: the same residential IPs and member accounts exist
// on every platform, but each platform runs its own graph, OAuth server,
// API surface, and (unless deliberately shared) its own defenses.
type Multi struct {
	Clock    simclock.Clock
	Internet *netsim.Internet

	platforms map[string]*Platform
	order     []string // default provider first, then the rest sorted
}

// NewMulti assembles one Platform per provider over a shared clock and
// Internet. The default provider need not be included; when it is, it is
// mounted at the HTTP root.
func NewMulti(clock simclock.Clock, internet *netsim.Internet, provs ...provider.Provider) *Multi {
	m := &Multi{
		Clock:     clock,
		Internet:  internet,
		platforms: make(map[string]*Platform, len(provs)),
	}
	def := provider.Default().Name()
	rest := make([]string, 0, len(provs))
	for _, prov := range provs {
		name := prov.Name()
		if _, dup := m.platforms[name]; dup {
			continue
		}
		m.platforms[name] = NewFor(prov, clock, internet)
		if name == def {
			m.order = append([]string{name}, m.order...)
			continue
		}
		rest = append(rest, name)
	}
	sort.Strings(rest)
	m.order = append(m.order, rest...)
	return m
}

// Get returns the platform for the named provider, or nil.
func (m *Multi) Get(name string) *Platform { return m.platforms[name] }

// Default returns the platform for the default provider, or — when the
// registry was built without it — the first registered platform.
func (m *Multi) Default() *Platform {
	if len(m.order) == 0 {
		return nil
	}
	return m.platforms[m.order[0]]
}

// Names lists the registered provider names, default first.
func (m *Multi) Names() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// Handler serves every registered platform from one mux. The default
// provider keeps the historical root mount — existing clients work
// unchanged — and every platform (default included) is also reachable
// under /<provider>/, which is the prefix NewHTTPClientFor clients use
// for provider selection on both single-op and /batch paths.
func (m *Multi) Handler() http.Handler {
	mux := http.NewServeMux()
	for i, name := range m.order {
		p := m.platforms[name]
		h := p.Handler()
		mux.Handle("/"+name+"/", http.StripPrefix("/"+name, h))
		if i == 0 && name == provider.Default().Name() {
			mux.Handle("/", h)
		}
	}
	return mux
}
