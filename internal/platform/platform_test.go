package platform

import (
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/defense"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

var t0 = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

type world struct {
	p      *Platform
	clock  *simclock.Simulated
	app    apps.App
	member socialgraph.Account
	author socialgraph.Account
	post   socialgraph.Post
}

func newWorld(t *testing.T) *world {
	t.Helper()
	clock := simclock.NewSimulated(t0)
	internet := netsim.NewInternet()
	if err := internet.RegisterAS(netsim.AS{Number: 64500, Name: "BP", Bulletproof: true}, "203.0.113.0/24"); err != nil {
		t.Fatal(err)
	}
	p := New(clock, internet)
	app := p.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
	member := p.Graph.CreateAccount("member", "IN", t0)
	author := p.Graph.CreateAccount("author", "IN", t0)
	post, err := p.Graph.CreatePost(author.ID, "my status", socialgraph.WriteMeta{At: t0})
	if err != nil {
		t.Fatal(err)
	}
	return &world{p: p, clock: clock, app: app, member: member, author: author, post: post}
}

// clientsUnderTest returns both transports bound to the same platform.
func clientsUnderTest(t *testing.T, w *world) map[string]Client {
	t.Helper()
	srv := w.p.ServeHTTPTest()
	t.Cleanup(srv.Close)
	return map[string]Client{
		"local": NewLocalClient(w.p),
		"http":  NewHTTPClient(srv.URL),
	}
}

func TestClientTransportsEquivalent(t *testing.T) {
	w := newWorld(t)
	for name, client := range clientsUnderTest(t, w) {
		t.Run(name, func(t *testing.T) {
			member := w.p.Graph.CreateAccount("member-"+name, "IN", t0)
			post, err := w.p.Graph.CreatePost(w.author.ID, "status for "+name, socialgraph.WriteMeta{At: t0})
			if err != nil {
				t.Fatal(err)
			}
			tok, err := client.AuthorizeImplicit(w.app.ID, w.app.RedirectURI, member.ID,
				[]string{apps.PermPublishActions, apps.PermPublicProfile})
			if err != nil {
				t.Fatal(err)
			}
			if tok == "" {
				t.Fatal("empty token")
			}
			me, err := client.Me(tok, "")
			if err != nil {
				t.Fatal(err)
			}
			if me.ID != member.ID || me.Country != "IN" {
				t.Fatalf("Me = %+v", me)
			}
			if err := client.Like(tok, post.ID, "203.0.113.9"); err != nil {
				t.Fatal(err)
			}
			likes, err := client.LikesOf(tok, post.ID)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, l := range likes {
				if l.AccountID == member.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("member like missing from %v", likes)
			}
			cid, err := client.Comment(tok, post.ID, "first!", "203.0.113.9")
			if err != nil {
				t.Fatal(err)
			}
			if cid == "" {
				t.Fatal("empty comment ID")
			}
			comments, err := client.CommentsOf(tok, post.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(comments) == 0 || comments[len(comments)-1].Message != "first!" {
				t.Fatalf("comments = %+v", comments)
			}
			pid, err := client.Publish(tok, "hello from "+name, "")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.p.Graph.Post(pid); err != nil {
				t.Fatalf("published post missing: %v", err)
			}
		})
	}
}

func TestNewWithShardsPinsStripeCount(t *testing.T) {
	clock := simclock.NewSimulated(t0)
	for _, tc := range []struct{ in, want int }{{1, 1}, {8, 8}, {13, 16}} {
		p := NewWithShards(clock, nil, tc.in)
		if got := p.Graph.ShardCount(); got != tc.want {
			t.Fatalf("NewWithShards(%d): ShardCount = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := New(clock, nil).Graph.ShardCount(); got != socialgraph.New().ShardCount() {
		t.Fatalf("New: ShardCount = %d, want store default", got)
	}
	// A pinned single-stripe platform must behave identically end to end:
	// run the full authorize→like→crawl path against it.
	p := NewWithShards(clock, nil, 1)
	app := p.Apps.Register(apps.Config{
		Name:              "Shard Probe",
		RedirectURI:       "https://probe.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
	member := p.Graph.CreateAccount("member", "IN", t0)
	author := p.Graph.CreateAccount("author", "IN", t0)
	post, err := p.Graph.CreatePost(author.ID, "status", socialgraph.WriteMeta{At: t0})
	if err != nil {
		t.Fatal(err)
	}
	client := NewLocalClient(p)
	tok, err := client.AuthorizeImplicit(app.ID, app.RedirectURI, member.ID,
		[]string{apps.PermPublishActions, apps.PermPublicProfile})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Like(tok, post.ID, ""); err != nil {
		t.Fatal(err)
	}
	likes, err := client.LikesOf(tok, post.ID)
	if err != nil || len(likes) != 1 || likes[0].AccountID != member.ID {
		t.Fatalf("likes = %+v, err = %v", likes, err)
	}
}

func TestClientErrorsPropagate(t *testing.T) {
	w := newWorld(t)
	for name, client := range clientsUnderTest(t, w) {
		t.Run(name, func(t *testing.T) {
			member := w.p.Graph.CreateAccount("err-member-"+name, "IN", t0)
			post, err := w.p.Graph.CreatePost(w.author.ID, "err post for "+name, socialgraph.WriteMeta{At: t0})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := client.AuthorizeImplicit(w.app.ID, "https://evil.example", member.ID, nil); err == nil {
				t.Fatal("bad redirect URI accepted")
			}
			if err := client.Like("bogus-token", post.ID, ""); err == nil {
				t.Fatal("bogus token accepted")
			}
			tok, err := client.AuthorizeImplicit(w.app.ID, w.app.RedirectURI, member.ID, []string{apps.PermPublishActions})
			if err != nil {
				t.Fatal(err)
			}
			if err := client.Like(tok, post.ID, ""); err != nil {
				t.Fatal(err)
			}
			err = client.Like(tok, post.ID, "")
			if err == nil {
				t.Fatal("duplicate like accepted")
			}
			if !strings.Contains(err.Error(), "duplicate") {
				t.Fatalf("duplicate error text = %v", err)
			}
		})
	}
}

func TestCountermeasuresApplyAcrossTransports(t *testing.T) {
	w := newWorld(t)
	limiter := defense.NewTokenRateLimiter(w.clock, 1, time.Hour)
	w.p.Chain().Append(limiter)
	for name, client := range clientsUnderTest(t, w) {
		t.Run(name, func(t *testing.T) {
			member := w.p.Graph.CreateAccount("m-"+name, "IN", t0)
			post, err := w.p.Graph.CreatePost(w.author.ID, "post for "+name, socialgraph.WriteMeta{At: t0})
			if err != nil {
				t.Fatal(err)
			}
			post2, err := w.p.Graph.CreatePost(w.author.ID, "post2 for "+name, socialgraph.WriteMeta{At: t0})
			if err != nil {
				t.Fatal(err)
			}
			tok, err := client.AuthorizeImplicit(w.app.ID, w.app.RedirectURI, member.ID, []string{apps.PermPublishActions})
			if err != nil {
				t.Fatal(err)
			}
			if err := client.Like(tok, post.ID, ""); err != nil {
				t.Fatal(err)
			}
			if err := client.Like(tok, post2.ID, ""); err == nil {
				t.Fatal("rate limit not enforced")
			}
		})
	}
}

func TestASBlockAppliesOverHTTP(t *testing.T) {
	w := newWorld(t)
	blocker := defense.NewASBlocker()
	blocker.Block(64500)
	w.p.Chain().Append(blocker)
	srv := w.p.ServeHTTPTest()
	t.Cleanup(srv.Close)
	client := NewHTTPClient(srv.URL)
	tok, err := client.AuthorizeImplicit(w.app.ID, w.app.RedirectURI, w.member.ID, []string{apps.PermPublishActions})
	if err != nil {
		t.Fatal(err)
	}
	// From the bulletproof AS: denied.
	if err := client.Like(tok, w.post.ID, "203.0.113.77"); err == nil {
		t.Fatal("like from blocked AS allowed")
	}
	// From an unknown IP: allowed.
	if err := client.Like(tok, w.post.ID, "192.0.2.1"); err != nil {
		t.Fatalf("like from unblocked source denied: %v", err)
	}
}

func TestLocalClientFeedAndFriends(t *testing.T) {
	w := newWorld(t)
	// Re-register an app approved for friends access.
	app := w.p.Apps.Register(apps.Config{
		Name:              "Full Access",
		RedirectURI:       "https://full.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions: []string{
			apps.PermPublicProfile, apps.PermUserFriends, apps.PermPublishActions,
		},
	})
	friend := w.p.Graph.CreateAccount("friendly", "EG", t0)
	if err := w.p.Graph.AddFriendship(w.member.ID, friend.ID); err != nil {
		t.Fatal(err)
	}
	srv := w.p.ServeHTTPTest()
	t.Cleanup(srv.Close)
	for name, client := range map[string]Client{
		"local": NewLocalClient(w.p),
		"http":  NewHTTPClient(srv.URL),
	} {
		t.Run(name, func(t *testing.T) {
			tok, err := client.AuthorizeImplicit(app.ID, app.RedirectURI, w.member.ID,
				[]string{apps.PermUserFriends, apps.PermPublishActions})
			if err != nil {
				t.Fatal(err)
			}
			// FeedOf sees posts published via the token.
			postID, err := client.Publish(tok, "feed post via "+name, "")
			if err != nil {
				t.Fatal(err)
			}
			feed, err := client.FeedOf(tok)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, p := range feed {
				if p.ID == postID {
					found = true
					if !strings.Contains(p.Message, name) {
						t.Fatalf("feed message = %q", p.Message)
					}
				}
			}
			if !found {
				t.Fatalf("published post missing from feed: %v", feed)
			}
			// FriendsOf exposes the friend edge.
			type friendLister interface {
				FriendsOf(token, ip string) ([]Profile, error)
			}
			friends, err := client.(friendLister).FriendsOf(tok, "")
			if err != nil {
				t.Fatal(err)
			}
			if len(friends) != 1 || friends[0].ID != friend.ID || friends[0].Country != "EG" {
				t.Fatalf("friends = %+v", friends)
			}
			// Error paths: a scopeless token is refused.
			bare, err := client.AuthorizeImplicit(app.ID, app.RedirectURI, w.member.ID,
				[]string{apps.PermPublishActions})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := client.(friendLister).FriendsOf(bare, ""); err == nil {
				t.Fatal("scopeless FriendsOf succeeded")
			}
			if _, err := client.FeedOf("dead-token"); err == nil {
				t.Fatal("FeedOf with dead token succeeded")
			}
			if _, err := client.Comment("dead-token", "p", "m", ""); err == nil {
				t.Fatal("Comment with dead token succeeded")
			}
			if _, err := client.Publish("dead-token", "m", ""); err == nil {
				t.Fatal("Publish with dead token succeeded")
			}
			if _, err := client.Me("dead-token", ""); err == nil {
				t.Fatal("Me with dead token succeeded")
			}
			if _, err := client.LikesOf("dead-token", "p"); err == nil {
				t.Fatal("LikesOf with dead token succeeded")
			}
			if _, err := client.CommentsOf("dead-token", "p"); err == nil {
				t.Fatal("CommentsOf with dead token succeeded")
			}
		})
	}
}
