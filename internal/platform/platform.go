// Package platform is the composition root of the simulated social
// network: it wires the social graph, the application registry, the OAuth
// authorization server, the Graph API, the Internet model, and the policy
// chain into one object, and exposes the platform both as an in-process
// API and over real HTTP.
//
// Collusion networks, honeypots, and the scanner all talk to the platform
// through the Client interface. Two implementations exist with identical
// semantics: LocalClient (direct calls; used by the large-scale
// experiments) and HTTPClient (real HTTP round trips; used by examples,
// integration tests, and the scanner). Both funnel into the same
// graphapi.API, so every countermeasure sees the same request tuples
// regardless of transport.
package platform

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"time"

	"repro/internal/apps"
	"repro/internal/graphapi"
	"repro/internal/netsim"
	"repro/internal/oauthsim"
	"repro/internal/obs"
	"repro/internal/provider"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

// ErrorCode extracts the Graph API error code from an error returned by
// either Client transport, or 0 when the error is not a Graph API error.
// The code is in the issuing provider's numeric space; code that talks to
// more than one platform should dispatch on ErrorKind instead.
func ErrorCode(err error) int {
	if code := graphapi.ErrCode(err); code != 0 {
		return code
	}
	if re, ok := err.(*RemoteAPIError); ok {
		return re.Code
	}
	var re *RemoteAPIError
	if errors.As(err, &re) {
		return re.Code
	}
	return 0
}

// ErrorKind extracts the provider-neutral error classification from an
// error returned by either Client transport, or KindNone. Collusion
// network delivery engines dispatch on this to distinguish dead tokens
// (invalidate-and-drop) from rate limiting (keep and adapt), identically
// across platforms whose numeric error spaces differ.
func ErrorKind(err error) provider.ErrKind {
	if k := graphapi.ErrKindOf(err); k != provider.KindNone {
		return k
	}
	if re, ok := err.(*RemoteAPIError); ok {
		return re.Kind
	}
	var re *RemoteAPIError
	if errors.As(err, &re) {
		return re.Kind
	}
	return provider.KindNone
}

// Platform aggregates all platform-side subsystems.
type Platform struct {
	Clock    simclock.Clock
	Provider provider.Provider
	Graph    *socialgraph.Store
	Apps     *apps.Registry
	OAuth    *oauthsim.Server
	API      *graphapi.API
	Internet *netsim.Internet
	Obs      *obs.Observer
}

// New assembles a platform. internet may be nil to skip AS resolution.
// The social graph is sharded with the GOMAXPROCS-scaled default stripe
// count; use NewWithShards to pin it.
func New(clock simclock.Clock, internet *netsim.Internet) *Platform {
	return NewWithShards(clock, internet, 0)
}

// NewWithShards assembles a platform whose social graph uses the given
// number of lock stripes (rounded down to a power of two; <= 0 selects
// the default). Experiments sweep this to measure how striping changes
// contention under parallel milking.
func NewWithShards(clock simclock.Clock, internet *netsim.Internet, shards int) *Platform {
	return NewSized(clock, internet, shards, 0)
}

// NewSized is NewWithShards with an account-population hint: the social
// graph's account-keyed maps are presized for accountHint accounts, which
// the scale workload uses to build million-account graphs without
// incremental map growth.
func NewSized(clock simclock.Clock, internet *netsim.Internet, shards, accountHint int) *Platform {
	return NewForSized(provider.Default(), clock, internet, shards, accountHint)
}

// NewFor assembles a platform speaking the given provider's dialect:
// token format, grant flows, scopes, error vocabulary, and batch cap.
// Cross-platform scenarios build one platform per provider over a shared
// clock and Internet model.
func NewFor(prov provider.Provider, clock simclock.Clock, internet *netsim.Internet) *Platform {
	return NewForSized(prov, clock, internet, 0, 0)
}

// NewForSized is NewFor with explicit shard and account-population hints.
func NewForSized(prov provider.Provider, clock simclock.Clock, internet *netsim.Internet, shards, accountHint int) *Platform {
	graph := socialgraph.NewSized(shards, accountHint)
	registry := apps.NewRegistry()
	oauth := oauthsim.NewServerFor(prov, clock, registry, graph)
	api := graphapi.NewFor(prov, clock, graph, oauth, registry, internet, graphapi.NewChain())
	observer := obs.NewFor(clock, prov.Name())
	api.SetObserver(observer)
	oauth.SetObserver(observer)
	registerGraphCollectors(observer, graph)
	return &Platform{
		Clock:    clock,
		Provider: prov,
		Graph:    graph,
		Apps:     registry,
		OAuth:    oauth,
		API:      api,
		Internet: internet,
		Obs:      observer,
	}
}

// registerGraphCollectors exports the store's per-shard lock counters at
// scrape time, so the contention the sharding PR measured in test logs is
// a first-class /metrics family.
func registerGraphCollectors(o *obs.Observer, graph *socialgraph.Store) {
	o.M().Collector("socialgraph_shard_lock_total",
		"Shard lock acquisitions, by stripe and outcome (fast = uncontended try-lock, contended = blocked).",
		obs.KindCounter, []string{"shard", "outcome"},
		func() []obs.Sample {
			points := graph.Contention().Snapshot()
			out := make([]obs.Sample, 0, 2*len(points))
			for _, pt := range points {
				shard := strconv.Itoa(pt.Shard)
				out = append(out,
					obs.Sample{Labels: []string{shard, "contended"}, Value: float64(pt.Contended)},
					obs.Sample{Labels: []string{shard, "fast"}, Value: float64(pt.Acquired - pt.Contended)},
				)
			}
			return out
		})
	o.M().Collector("socialgraph_retention_sweeps_total",
		"Retention sweeps completed.",
		obs.KindCounter, nil,
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(graph.Retention().Snapshot().Sweeps)}}
		})
	o.M().Collector("socialgraph_retention_evicted_total",
		"Edge-history entries evicted by retention sweeps, by class.",
		obs.KindCounter, []string{"class"},
		func() []obs.Sample {
			snap := graph.Retention().Snapshot()
			return []obs.Sample{
				{Labels: []string{"like"}, Value: float64(snap.Likes)},
				{Labels: []string{"comment"}, Value: float64(snap.Comments)},
				{Labels: []string{"activity"}, Value: float64(snap.Activities)},
			}
		})
	o.M().Collector("socialgraph_retained_edges",
		"Currently retained edge-history entries, by class. With a finite retention window this gauge plateaus under steady load.",
		obs.KindGauge, []string{"class"},
		func() []obs.Sample {
			st := graph.RetainedEdges()
			return []obs.Sample{
				{Labels: []string{"like"}, Value: float64(st.Likes)},
				{Labels: []string{"comment"}, Value: float64(st.Comments)},
				{Labels: []string{"activity"}, Value: float64(st.Activities)},
			}
		})
}

// Handler returns the platform's HTTP surface, wrapped in the
// observability middleware (per-endpoint request counts and latency,
// trace joining via the X-Trace-Id header).
func (p *Platform) Handler() http.Handler {
	return p.Obs.Middleware(graphapi.Handler(p.API), "graphapi", graphapi.NormalizeEndpoint)
}

// ServeHTTPTest starts an httptest server for the platform. The caller
// owns the returned server and must Close it.
func (p *Platform) ServeHTTPTest() *httptest.Server {
	return httptest.NewServer(p.Handler())
}

// Chain returns the policy chain for countermeasure deployment.
func (p *Platform) Chain() *graphapi.Chain {
	return p.API.Chain()
}

// LikeRecord is a transport-neutral view of one like.
type LikeRecord struct {
	AccountID string
	At        time.Time
}

// CommentRecord is a transport-neutral view of one comment.
type CommentRecord struct {
	ID        string
	AccountID string
	Message   string
	At        time.Time
}

// Profile is a transport-neutral view of /me.
type Profile struct {
	ID      string
	Name    string
	Country string
}

// Client is the platform operation surface collusion networks and
// honeypots use. ip is the source address the call should appear to
// originate from ("" lets the transport decide).
type Client interface {
	// AuthorizeImplicit walks the implicit OAuth flow for the given app on
	// behalf of accountID and returns the leaked access token. redirectURI
	// must match the app's configured redirection endpoint — clients learn
	// it out of band (collusion networks hardcode the install link).
	AuthorizeImplicit(appID, redirectURI, accountID string, scopes []string) (string, error)
	// Me returns the profile of the token's account.
	Me(token, ip string) (Profile, error)
	// Like publishes a like.
	Like(token, objectID, ip string) error
	// Comment publishes a comment and returns its ID.
	Comment(token, postID, message, ip string) (string, error)
	// Publish creates a status update and returns the post ID.
	Publish(token, message, ip string) (string, error)
	// LikesOf lists likes on an object.
	LikesOf(token, objectID string) ([]LikeRecord, error)
	// CommentsOf lists comments on a post.
	CommentsOf(token, postID string) ([]CommentRecord, error)
	// FeedOf lists the token account's own posts (used by premium
	// auto-delivery to find fresh posts without a member login).
	FeedOf(token string) ([]PostRecord, error)
}

// PostRecord is a transport-neutral view of one feed post.
type PostRecord struct {
	ID      string
	Message string
	At      time.Time
}

// CodeExchanger is the optional extension of Client for transports that
// can drive the authorization-code (server-side) flow: walk the dialog
// for a one-time code, then swap it for a token by authenticating with
// the application secret. Providers without an implicit flow — the ones
// whose tokens cannot be milked from a redirect fragment — are reachable
// only this way, so a cross-platform collusion network needs a companion
// app (and its secret) on such a platform to pool tokens there.
type CodeExchanger interface {
	// AuthorizeCode walks the dialog with response_type=code and returns
	// the one-time authorization code from the redirect query.
	AuthorizeCode(appID, redirectURI, accountID string, scopes []string) (string, error)
	// ExchangeCode swaps the code for an access token at the token
	// endpoint, authenticating with the application secret.
	ExchangeCode(appID, appSecret, redirectURI, code string) (string, error)
}

// ContextClient is the optional extension of Client for transports that
// can propagate a trace context into a write: the local transport passes
// the caller's span through CallContext.Ctx; the HTTP transport carries it
// in the X-Trace-Id / X-Parent-Span headers. Delivery engines type-assert
// for it and fall back to the plain methods, so Client implementations
// outside this package keep working unchanged.
type ContextClient interface {
	LikeCtx(ctx context.Context, token, objectID, ip string) error
	CommentCtx(ctx context.Context, token, postID, message, ip string) (string, error)
}

// BatchLike is one like in a homogeneous batch: the member token that
// performs it and the source IP it should appear to originate from.
type BatchLike struct {
	Token string
	IP    string
}

// BatchClient is the optional extension of Client for transports that can
// deliver a burst of likes on one object in a single round trip. The
// result is one error per op, aligned by index (nil = delivered), with
// semantics identical to N sequential Like calls — each op is still
// policy-checked on its own token and IP. Delivery engines type-assert
// for it and fall back to per-call Like, so Client implementations
// outside this package keep working unchanged.
type BatchClient interface {
	LikeBatch(ctx context.Context, objectID string, ops []BatchLike) []error
}

// LocalClient implements Client with direct in-process calls.
type LocalClient struct {
	p *Platform
}

// NewLocalClient returns a Client bound directly to the platform.
func NewLocalClient(p *Platform) *LocalClient {
	return &LocalClient{p: p}
}

// AuthorizeImplicit implements Client.
func (c *LocalClient) AuthorizeImplicit(appID, redirectURI, accountID string, scopes []string) (string, error) {
	res, err := c.p.OAuth.Authorize(oauthsim.AuthorizeRequest{
		AppID:        appID,
		RedirectURI:  redirectURI,
		ResponseType: oauthsim.ResponseToken,
		Scopes:       scopes,
		AccountID:    accountID,
	})
	if err != nil {
		return "", err
	}
	return res.AccessToken, nil
}

// AuthorizeCode implements CodeExchanger with a direct dialog call.
func (c *LocalClient) AuthorizeCode(appID, redirectURI, accountID string, scopes []string) (string, error) {
	res, err := c.p.OAuth.Authorize(oauthsim.AuthorizeRequest{
		AppID:        appID,
		RedirectURI:  redirectURI,
		ResponseType: oauthsim.ResponseCode,
		Scopes:       scopes,
		AccountID:    accountID,
	})
	if err != nil {
		return "", err
	}
	return res.Code, nil
}

// ExchangeCode implements CodeExchanger against the in-process token
// endpoint.
func (c *LocalClient) ExchangeCode(appID, appSecret, redirectURI, code string) (string, error) {
	info, err := c.p.OAuth.ExchangeCode(appID, appSecret, redirectURI, code)
	if err != nil {
		return "", err
	}
	return info.Token, nil
}

// Me implements Client.
func (c *LocalClient) Me(token, ip string) (Profile, error) {
	acct, err := c.p.API.Me(graphapi.CallContext{AccessToken: token, SourceIP: ip})
	if err != nil {
		return Profile{}, err
	}
	return Profile{ID: acct.ID, Name: acct.Name, Country: acct.Country}, nil
}

// Like implements Client.
func (c *LocalClient) Like(token, objectID, ip string) error {
	return c.p.API.Like(graphapi.CallContext{AccessToken: token, SourceIP: ip}, objectID)
}

// LikeCtx implements ContextClient: the like joins the trace carried by
// ctx.
func (c *LocalClient) LikeCtx(ctx context.Context, token, objectID, ip string) error {
	return c.p.API.Like(graphapi.CallContext{Ctx: ctx, AccessToken: token, SourceIP: ip}, objectID)
}

// LikeBatch implements BatchClient with one direct call into the API's
// batched like endpoint.
func (c *LocalClient) LikeBatch(ctx context.Context, objectID string, ops []BatchLike) []error {
	apiOps := make([]graphapi.BatchLikeOp, len(ops))
	for i, op := range ops {
		apiOps[i] = graphapi.BatchLikeOp{AccessToken: op.Token, SourceIP: op.IP}
	}
	return c.p.API.LikeBatch(ctx, objectID, apiOps)
}

// Comment implements Client.
func (c *LocalClient) Comment(token, postID, message, ip string) (string, error) {
	cm, err := c.p.API.Comment(graphapi.CallContext{AccessToken: token, SourceIP: ip}, postID, message)
	if err != nil {
		return "", err
	}
	return cm.ID, nil
}

// CommentCtx implements ContextClient.
func (c *LocalClient) CommentCtx(ctx context.Context, token, postID, message, ip string) (string, error) {
	cm, err := c.p.API.Comment(graphapi.CallContext{Ctx: ctx, AccessToken: token, SourceIP: ip}, postID, message)
	if err != nil {
		return "", err
	}
	return cm.ID, nil
}

// Publish implements Client.
func (c *LocalClient) Publish(token, message, ip string) (string, error) {
	p, err := c.p.API.Publish(graphapi.CallContext{AccessToken: token, SourceIP: ip}, message)
	if err != nil {
		return "", err
	}
	return p.ID, nil
}

// LikesOf implements Client.
func (c *LocalClient) LikesOf(token, objectID string) ([]LikeRecord, error) {
	likes, err := c.p.API.Likes(graphapi.CallContext{AccessToken: token}, objectID)
	if err != nil {
		return nil, err
	}
	out := make([]LikeRecord, len(likes))
	for i, l := range likes {
		out[i] = LikeRecord{AccountID: l.AccountID, At: l.At}
	}
	return out, nil
}

// FriendsOf lists the token account's friends (requires the user_friends
// scope). It is not part of the minimal Client interface — collusion
// delivery never needs it — but both transports provide it for the
// Section 8 harvesting attacks.
func (c *LocalClient) FriendsOf(token, ip string) ([]Profile, error) {
	friends, err := c.p.API.Friends(graphapi.CallContext{AccessToken: token, SourceIP: ip})
	if err != nil {
		return nil, err
	}
	out := make([]Profile, len(friends))
	for i, f := range friends {
		out[i] = Profile{ID: f.ID, Name: f.Name, Country: f.Country}
	}
	return out, nil
}

// FeedOf implements Client.
func (c *LocalClient) FeedOf(token string) ([]PostRecord, error) {
	posts, err := c.p.API.Feed(graphapi.CallContext{AccessToken: token})
	if err != nil {
		return nil, err
	}
	out := make([]PostRecord, len(posts))
	for i, p := range posts {
		out[i] = PostRecord{ID: p.ID, Message: p.Message, At: p.CreatedAt}
	}
	return out, nil
}

// CommentsOf implements Client.
func (c *LocalClient) CommentsOf(token, postID string) ([]CommentRecord, error) {
	comments, err := c.p.API.Comments(graphapi.CallContext{AccessToken: token}, postID)
	if err != nil {
		return nil, err
	}
	out := make([]CommentRecord, len(comments))
	for i, cm := range comments {
		out[i] = CommentRecord{ID: cm.ID, AccountID: cm.AccountID, Message: cm.Message, At: cm.At}
	}
	return out, nil
}
