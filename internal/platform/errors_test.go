package platform

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/graphapi"
)

// brokenServer simulates a platform returning malformed responses — the
// transport-level failures a long-running crawler has to survive.
func brokenServer(t *testing.T, status int, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestHTTPClientMalformedJSON(t *testing.T) {
	srv := brokenServer(t, http.StatusOK, "{not json at all")
	c := NewHTTPClient(srv.URL)
	if _, err := c.Me("tok", ""); err == nil {
		t.Fatal("malformed /me body accepted")
	}
	if _, err := c.LikesOf("tok", "post"); err == nil {
		t.Fatal("malformed likes body accepted")
	}
	if _, err := c.CommentsOf("tok", "post"); err == nil {
		t.Fatal("malformed comments body accepted")
	}
	if _, err := c.FeedOf("tok"); err == nil {
		t.Fatal("malformed feed body accepted")
	}
	if _, err := c.FriendsOf("tok", ""); err == nil {
		t.Fatal("malformed friends body accepted")
	}
}

func TestHTTPClientNonEnvelopeError(t *testing.T) {
	srv := brokenServer(t, http.StatusBadGateway, "upstream exploded")
	c := NewHTTPClient(srv.URL)
	err := c.Like("tok", "post", "")
	if err == nil {
		t.Fatal("502 accepted")
	}
	if !strings.Contains(err.Error(), "502") || !strings.Contains(err.Error(), "upstream exploded") {
		t.Fatalf("error = %v", err)
	}
	// Non-envelope errors carry no Graph API code.
	if code := ErrorCode(err); code != 0 {
		t.Fatalf("code = %d", code)
	}
}

func TestHTTPClientConnectionRefused(t *testing.T) {
	c := NewHTTPClient("http://127.0.0.1:1") // nothing listens on port 1
	if err := c.Like("tok", "post", ""); err == nil {
		t.Fatal("dead endpoint accepted")
	}
	if _, err := c.AuthorizeImplicit("app", "https://x", "acct", nil); err == nil {
		t.Fatal("dead dialog accepted")
	}
}

func TestErrorCodeDispatch(t *testing.T) {
	remote := &RemoteAPIError{Code: 613, Type: "PolicyException", Message: "limit"}
	if got := ErrorCode(remote); got != 613 {
		t.Fatalf("remote code = %d", got)
	}
	local := &graphapi.APIError{Code: 190, Type: "OAuthException", Message: "dead"}
	if got := ErrorCode(local); got != 190 {
		t.Fatalf("local code = %d", got)
	}
	if !strings.Contains(remote.Error(), "613") {
		t.Fatalf("remote Error() = %q", remote.Error())
	}
}
