package platform

// Transport equivalence for the batched like path: LocalClient lowers
// LikeBatch straight onto the API; HTTPClient chunks it into /batch
// requests that the server recognizes as homogeneous like batches and
// lowers onto the same API call. Both must produce identical per-op
// results, honor per-op source IPs, and map embedded errors back to the
// same codes as single Like calls.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/graphapi"
	"repro/internal/socialgraph"
)

func TestLikeBatchTransportsEquivalent(t *testing.T) {
	w := newWorld(t)
	for name, client := range clientsUnderTest(t, w) {
		t.Run(name, func(t *testing.T) {
			bc, ok := client.(BatchClient)
			if !ok {
				t.Fatalf("%s transport does not implement BatchClient", name)
			}
			post, err := w.p.Graph.CreatePost(w.author.ID, "batch post "+name, socialgraph.WriteMeta{At: t0})
			if err != nil {
				t.Fatal(err)
			}
			// 60 members forces the HTTP transport to split into two /batch
			// chunks (50-op Graph API cap + 10).
			const members = 60
			ops := make([]BatchLike, 0, members+2)
			for i := 0; i < members; i++ {
				m := w.p.Graph.CreateAccount(fmt.Sprintf("bm-%s-%d", name, i), "IN", t0)
				tok, err := client.AuthorizeImplicit(w.app.ID, w.app.RedirectURI, m.ID,
					[]string{apps.PermPublishActions, apps.PermPublicProfile})
				if err != nil {
					t.Fatal(err)
				}
				ops = append(ops, BatchLike{Token: tok, IP: fmt.Sprintf("203.0.113.%d", i%250)})
			}
			// A bogus token and an intra-batch duplicate ride along.
			ops = append(ops, BatchLike{Token: "bogus-token", IP: "203.0.113.250"})
			ops = append(ops, BatchLike{Token: ops[0].Token, IP: ops[0].IP})

			errs := bc.LikeBatch(context.Background(), post.ID, ops)
			if len(errs) != len(ops) {
				t.Fatalf("LikeBatch returned %d errors for %d ops", len(errs), len(ops))
			}
			for i := 0; i < members; i++ {
				if errs[i] != nil {
					t.Fatalf("op %d failed: %v", i, errs[i])
				}
			}
			if code := ErrorCode(errs[members]); code != graphapi.CodeInvalidToken {
				t.Fatalf("bogus-token op code = %d (%v), want %d", code, errs[members], graphapi.CodeInvalidToken)
			}
			if code := ErrorCode(errs[members+1]); code != graphapi.CodeDuplicate {
				t.Fatalf("duplicate op code = %d (%v), want %d", code, errs[members+1], graphapi.CodeDuplicate)
			}

			likes := w.p.Graph.Likes(post.ID)
			if len(likes) != members {
				t.Fatalf("likes = %d, want %d", len(likes), members)
			}
			// Per-op source IPs survive the transport: countermeasures key on
			// them, so the batch may not flatten attribution.
			for i, l := range likes {
				if want := fmt.Sprintf("203.0.113.%d", i%250); l.SourceIP != want {
					t.Fatalf("like %d SourceIP = %q, want %q", i, l.SourceIP, want)
				}
			}
		})
	}
}

func TestLikeBatchEmptyAndSingle(t *testing.T) {
	w := newWorld(t)
	for name, client := range clientsUnderTest(t, w) {
		t.Run(name, func(t *testing.T) {
			bc := client.(BatchClient)
			if errs := bc.LikeBatch(context.Background(), w.post.ID, nil); len(errs) != 0 {
				t.Fatalf("empty batch returned %d errors", len(errs))
			}
			m := w.p.Graph.CreateAccount("single-"+name, "IN", t0)
			tok, err := client.AuthorizeImplicit(w.app.ID, w.app.RedirectURI, m.ID,
				[]string{apps.PermPublishActions, apps.PermPublicProfile})
			if err != nil {
				t.Fatal(err)
			}
			errs := bc.LikeBatch(context.Background(), w.post.ID, []BatchLike{{Token: tok, IP: "203.0.113.1"}})
			if len(errs) != 1 || errs[0] != nil {
				t.Fatalf("single-op batch = %v", errs)
			}
		})
	}
}
