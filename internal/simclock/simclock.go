// Package simclock provides an injectable clock abstraction so that every
// time-dependent component in the reproduction (token lifetimes, rate
// limiter windows, delivery schedules, analytics buckets) can run against
// either the real wall clock or a deterministic simulated clock.
//
// The paper's measurements span months of wall time (Nov 2015 – Feb 2016
// milking, Aug – Oct 2016 countermeasures). A simulated clock lets the
// 75-day countermeasure timeline of Figure 5 execute in milliseconds while
// preserving the ordering and rate semantics that the countermeasures
// depend on.
package simclock

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the minimal time source used throughout the repository.
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that delivers the then-current time once the
	// clock has advanced by at least d.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until the clock has advanced by at least d.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the operating system clock.
type Real struct{}

// NewReal returns a Clock that reads the wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// waiter is a pending After/Sleep registration on a Simulated clock.
type waiter struct {
	deadline time.Time
	ch       chan time.Time
	index    int
	seq      uint64
}

// waiterHeap orders waiters by deadline, breaking ties by registration
// order so that wakeups are deterministic.
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].deadline.Equal(h[j].deadline) {
		return h[i].seq < h[j].seq
	}
	return h[i].deadline.Before(h[j].deadline)
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Simulated is a deterministic Clock whose time only moves when Advance or
// AdvanceTo is called. It is safe for concurrent use.
type Simulated struct {
	mu      sync.Mutex
	base    time.Time    // construction instant; immutable after NewSimulated
	offset  atomic.Int64 // nanoseconds advanced past base
	waiters waiterHeap
	seq     uint64
}

// NewSimulated returns a Simulated clock initialised to start.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{base: start}
}

// Now implements Clock. It is lock-free: simulated time is the immutable
// base plus an atomically-published offset, so the hottest call in the
// whole simulation (every like reads the clock) never contends with
// concurrent readers or an in-flight Advance.
func (s *Simulated) Now() time.Time {
	return s.base.Add(time.Duration(s.offset.Load()))
}

// nowLocked returns the current instant; callers hold s.mu.
func (s *Simulated) nowLocked() time.Time {
	return s.base.Add(time.Duration(s.offset.Load()))
}

// setNowLocked publishes a new current instant; callers hold s.mu and
// never move time backwards.
func (s *Simulated) setNowLocked(t time.Time) {
	s.offset.Store(int64(t.Sub(s.base)))
}

// After implements Clock. The returned channel has capacity 1, so the
// clock never blocks on delivery.
func (s *Simulated) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	now := s.nowLocked()
	if d <= 0 {
		ch <- now
		return ch
	}
	s.seq++
	heap.Push(&s.waiters, &waiter{deadline: now.Add(d), ch: ch, seq: s.seq})
	return ch
}

// Sleep implements Clock. It blocks the calling goroutine until another
// goroutine advances the clock past the deadline.
func (s *Simulated) Sleep(d time.Duration) {
	<-s.After(d)
}

// Advance moves the clock forward by d, firing any waiters whose deadlines
// are reached, in deadline order.
func (s *Simulated) Advance(d time.Duration) {
	if d < 0 {
		panic("simclock: negative advance")
	}
	s.mu.Lock()
	target := s.nowLocked().Add(d)
	s.advanceToLocked(target)
	s.mu.Unlock()
}

// AdvanceTo moves the clock forward to t. Moving backwards is a no-op.
func (s *Simulated) AdvanceTo(t time.Time) {
	s.mu.Lock()
	if t.After(s.nowLocked()) {
		s.advanceToLocked(t)
	}
	s.mu.Unlock()
}

func (s *Simulated) advanceToLocked(target time.Time) {
	for len(s.waiters) > 0 && !s.waiters[0].deadline.After(target) {
		w := heap.Pop(&s.waiters).(*waiter)
		// Deliver the waiter's own deadline so steps observe monotonically
		// non-decreasing times even when several deadlines fire in one
		// Advance call.
		s.setNowLocked(w.deadline)
		w.ch <- w.deadline
	}
	s.setNowLocked(target)
}

// PendingWaiters reports how many After/Sleep registrations have not fired
// yet. It exists for tests.
func (s *Simulated) PendingWaiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}
