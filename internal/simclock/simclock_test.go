package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC)

func TestSimulatedNow(t *testing.T) {
	c := NewSimulated(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	c.Advance(time.Hour)
	if got := c.Now(); !got.Equal(epoch.Add(time.Hour)) {
		t.Fatalf("Now() after advance = %v, want %v", got, epoch.Add(time.Hour))
	}
}

func TestSimulatedAdvanceTo(t *testing.T) {
	c := NewSimulated(epoch)
	target := epoch.Add(48 * time.Hour)
	c.AdvanceTo(target)
	if got := c.Now(); !got.Equal(target) {
		t.Fatalf("Now() = %v, want %v", got, target)
	}
	// Moving backwards must be a no-op.
	c.AdvanceTo(epoch)
	if got := c.Now(); !got.Equal(target) {
		t.Fatalf("Now() after backwards AdvanceTo = %v, want %v", got, target)
	}
}

func TestSimulatedAfterFiresAtDeadline(t *testing.T) {
	c := NewSimulated(epoch)
	ch := c.After(10 * time.Minute)
	select {
	case <-ch:
		t.Fatal("After fired before the clock advanced")
	default:
	}
	c.Advance(9 * time.Minute)
	select {
	case <-ch:
		t.Fatal("After fired before its deadline")
	default:
	}
	c.Advance(time.Minute)
	select {
	case got := <-ch:
		want := epoch.Add(10 * time.Minute)
		if !got.Equal(want) {
			t.Fatalf("After delivered %v, want %v", got, want)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestSimulatedAfterZeroFiresImmediately(t *testing.T) {
	c := NewSimulated(epoch)
	select {
	case got := <-c.After(0):
		if !got.Equal(epoch) {
			t.Fatalf("After(0) delivered %v, want %v", got, epoch)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestSimulatedMultipleWaitersFireAtOwnDeadlines(t *testing.T) {
	c := NewSimulated(epoch)
	durations := []time.Duration{3 * time.Hour, time.Hour, 2 * time.Hour}
	chans := make([]<-chan time.Time, len(durations))
	for i, d := range durations {
		chans[i] = c.After(d)
	}
	c.Advance(3 * time.Hour)
	for i, d := range durations {
		select {
		case got := <-chans[i]:
			want := epoch.Add(d)
			if !got.Equal(want) {
				t.Fatalf("waiter %d delivered %v, want %v", i, got, want)
			}
		default:
			t.Fatalf("waiter %d did not fire", i)
		}
	}
}

func TestSimulatedSleepUnblocks(t *testing.T) {
	c := NewSimulated(epoch)
	done := make(chan struct{})
	go func() {
		c.Sleep(time.Hour)
		close(done)
	}()
	// Wait until the sleeper has registered.
	for c.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(time.Hour)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not unblock after the clock advanced")
	}
}

func TestSimulatedPendingWaiters(t *testing.T) {
	c := NewSimulated(epoch)
	_ = c.After(time.Hour)
	_ = c.After(2 * time.Hour)
	if got := c.PendingWaiters(); got != 2 {
		t.Fatalf("PendingWaiters = %d, want 2", got)
	}
	c.Advance(time.Hour)
	if got := c.PendingWaiters(); got != 1 {
		t.Fatalf("PendingWaiters after advance = %d, want 1", got)
	}
}

func TestSimulatedNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewSimulated(epoch).Advance(-time.Second)
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
	start := time.Now()
	c.Sleep(time.Millisecond)
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("Real.Sleep returned after %v, want >= 1ms", elapsed)
	}
}

func TestSimulatedConcurrentAdvance(t *testing.T) {
	c := NewSimulated(epoch)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := epoch.Add(800 * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}
