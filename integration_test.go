package repro

// The end-to-end integration test: every component composed over real
// HTTP, exactly the deployment shape of cmd/platformd + cmd/collusiond +
// cmd/milker + cmd/scanner, followed by the countermeasure sweep. One
// test tells the paper's whole story.

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/collusion"
	"repro/internal/defense"
	"repro/internal/honeypot"
	"repro/internal/platform"
	"repro/internal/scanner"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

func TestFullStoryOverHTTP(t *testing.T) {
	clock := simclock.NewSimulated(time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC))
	p := platform.New(clock, nil)
	platformSrv := p.ServeHTTPTest()
	defer platformSrv.Close()

	// Act 1 — the ecosystem: a popular app with weak security settings.
	app := p.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc-sense.example/callback",
		ClientFlowEnabled: true,
		RequireAppSecret:  false,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
		MAU:               1_000_000,
	})

	// Act 2 — the scanner finds it susceptible (Sec. 2.2 / Table 1).
	testAcct := p.Graph.CreateAccount("scanner-test", "US", clock.Now())
	testPost, err := p.Graph.CreatePost(testAcct.ID, "probe", socialgraph.WriteMeta{At: clock.Now()})
	if err != nil {
		t.Fatal(err)
	}
	sc := scanner.New(platformSrv.URL, testAcct.ID, testPost.ID)
	verdict := sc.ScanLoginURL(scanner.LoginURL(platformSrv.URL, app.ID, app.RedirectURI, app.Permissions))
	if !verdict.Susceptible || !verdict.LongTerm {
		t.Fatalf("scanner verdict = %+v", verdict)
	}

	// Act 3 — a collusion network exploits it (Sec. 3), running as its
	// own HTTP service that talks to the platform over HTTP.
	network := collusion.NewNetwork(collusion.Config{
		Name:            "integration-liker.net",
		AppID:           app.ID,
		AppRedirectURI:  app.RedirectURI,
		LikesPerRequest: 12,
		CaptchaRequired: true,
		AdWallHops:      1,
		AdsPerVisit:     3,
	}, clock, platform.NewHTTPClient(platformSrv.URL))
	siteSrv := httptest.NewServer(collusion.Handler(network))
	defer siteSrv.Close()

	memberClient := platform.NewHTTPClient(platformSrv.URL)
	var members []socialgraph.Account
	for i := 0; i < 40; i++ {
		acct := p.Graph.CreateAccount("member", "IN", clock.Now())
		tok, err := memberClient.AuthorizeImplicit(app.ID, app.RedirectURI, acct.ID,
			[]string{apps.PermPublicProfile, apps.PermPublishActions})
		if err != nil {
			t.Fatal(err)
		}
		if err := network.SubmitToken(acct.ID, tok); err != nil {
			t.Fatal(err)
		}
		members = append(members, acct)
	}

	// Act 4 — a honeypot infiltrates and milks it over HTTP (Sec. 4).
	hpAccount := p.Graph.CreateAccount("integration-honeypot", "US", clock.Now())
	hp := honeypot.New(honeypot.Config{
		Clock:     clock,
		Client:    platform.NewHTTPClient(platformSrv.URL),
		Site:      honeypot.NewHTTPSite("integration-liker.net", siteSrv.URL),
		App:       app,
		AccountID: hpAccount.ID,
	})
	if err := hp.Join(); err != nil {
		t.Fatal(err)
	}
	est := honeypot.NewEstimator()
	for round := 0; round < 6; round++ {
		postID, delivered, err := hp.MilkOnce()
		if err != nil {
			t.Fatalf("milking round %d: %v", round, err)
		}
		if delivered != 12 {
			t.Fatalf("round %d delivered %d", round, delivered)
		}
		var likers []string
		for _, l := range hp.IncomingLikes()[postID] {
			likers = append(likers, l.AccountID)
		}
		est.ObservePost(likers)
		clock.Advance(time.Hour)
	}
	if est.MembershipEstimate() < 30 {
		t.Fatalf("membership estimate = %d of 41", est.MembershipEstimate())
	}

	// Act 5 — countermeasures (Sec. 6): invalidate every milked account's
	// tokens; the next milking request delivers almost nothing.
	inv := defense.NewInvalidator(defense.AccountRevokerFunc(func(id, reason string) bool {
		return p.OAuth.InvalidateAccount(id, reason) > 0
	}), "honeypot-milked")
	for _, post := range hp.PostIDs() {
		var ids []string
		for _, l := range hp.IncomingLikes()[post] {
			ids = append(ids, l.AccountID)
		}
		inv.Submit(ids)
	}
	swept := inv.InvalidateAll()
	if swept < 30 {
		t.Fatalf("swept only %d accounts", swept)
	}
	clock.Advance(time.Hour)
	_, delivered, err := hp.MilkOnce()
	if err != nil {
		t.Fatal(err)
	}
	if delivered > 5 {
		t.Fatalf("network delivered %d likes after the sweep", delivered)
	}

	// Epilogue — remediation: the manufactured likes are purged.
	var swarm []string
	for _, m := range members {
		swarm = append(swarm, m.ID)
	}
	removed := defense.PurgeLikes(p.Graph, swarm)
	if removed < 70 {
		t.Fatalf("purged %d likes", removed)
	}
	for _, post := range hp.PostIDs() {
		if n := p.Graph.LikeCount(post); n != 0 {
			t.Fatalf("post %s still has %d likes after purge", post, n)
		}
	}

	// The network's books reflect the story: tokens collected, likes
	// delivered, failures recorded when the sweep hit.
	st := network.Stats()
	if st.TokensCollected != 41 || st.LikesDelivered < 72 {
		t.Fatalf("network stats = %+v", st)
	}
	if st.FailuresByCode[190] == 0 {
		t.Fatal("no invalid-token failures recorded after the sweep")
	}
	if st.AdImpressions == 0 {
		t.Fatal("ad wall served no impressions")
	}
	if !strings.Contains(network.InstallURL(), app.ID) {
		t.Fatal("install URL broken")
	}
}
