package repro

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/provider"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

// Allocation gates for the two hottest store paths. These are regression
// tripwires, not targets: the bounds carry ~2x headroom over measured
// HEAD so noise and minor refactors pass, while an accidental per-op
// allocation (a closure capture, a map rebuild, fmt in the hot loop)
// fails loudly. CI runs them in the bench-trajectory job alongside
// `repro bench`.

// TestAllocGateAddLikeBatch bounds the per-burst allocation count of the
// store-level batch apply — the collusion delivery hot path. A 50-op
// burst against a warm post must stay O(burst): each like appends one
// edge and one per-account entry, so the budget is a small multiple of
// the burst size, never O(members) or per-op map churn.
func TestAllocGateAddLikeBatch(t *testing.T) {
	const burst = 50
	w := newBenchWorld(t, 1)
	graph := w.p.Graph
	accounts := make([]string, burst)
	for i := range accounts {
		accounts[i] = graph.CreateAccount(fmt.Sprintf("gate-liker-%d", i), "IN", w.clock.Now()).ID
	}
	meta := socialgraph.WriteMeta{SourceIP: "192.0.2.1", At: w.clock.Now()}
	ops := make([]socialgraph.LikeOp, burst)

	allocs := testing.AllocsPerRun(20, func() {
		post, err := graph.CreatePost(w.post.AuthorID, "p", socialgraph.WriteMeta{At: w.clock.Now()})
		if err != nil {
			t.Fatal(err)
		}
		for j, acct := range accounts {
			ops[j] = socialgraph.LikeOp{AccountID: acct, ObjectID: post.ID, Meta: meta}
		}
		for _, err := range graph.AddLikeBatch(ops) {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	t.Logf("CreatePost+AddLikeBatch(%d ops): %.0f allocs/run", burst, allocs)
	// Measured at HEAD: ~35 allocs for CreatePost + 50 likes (<1/like —
	// edges append into pre-grown slices). Gate at 128: amortized slice
	// growth passes, anything per-op (~50+ new allocs) trips.
	if limit := float64(128); allocs > limit {
		t.Errorf("CreatePost+AddLikeBatch(%d ops) = %.0f allocs/run, gate %v", burst, allocs, limit)
	}
}

// TestAllocGateTokenValidate bounds token validation — on the critical
// path of every Graph API call. Lookup of a warm token must not allocate
// per call beyond the returned TokenInfo copy.
func TestAllocGateTokenValidate(t *testing.T) {
	w := newBenchWorld(t, 1)
	tok := w.tokens[0]

	allocs := testing.AllocsPerRun(100, func() {
		if _, err := w.p.OAuth.Validate(tok); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("OAuth.Validate: %.0f allocs/run", allocs)
	// Measured at HEAD: 1 alloc per Validate (the TokenInfo copy). Gate at 4.
	if limit := float64(4); allocs > limit {
		t.Errorf("OAuth.Validate = %.0f allocs/run, gate %v", allocs, limit)
	}
}

// TestAllocGateProviderCheckToken pins every registered provider's token
// format check at zero allocations. CheckToken fronts each validation and
// runs on attacker-supplied strings (the scanner feeds it candidate
// tokens), so even the signed pictogram format must verify its checksum
// without heap traffic.
func TestAllocGateProviderCheckToken(t *testing.T) {
	for _, name := range provider.Names() {
		prov := provider.MustGet(name)
		tok := prov.MintToken()
		allocs := testing.AllocsPerRun(100, func() {
			if err := prov.CheckToken(tok); err != nil {
				t.Fatalf("%s: freshly minted token fails CheckToken: %v", name, err)
			}
		})
		t.Logf("%s CheckToken: %.0f allocs/run", name, allocs)
		if allocs > 0 {
			t.Errorf("%s CheckToken = %.0f allocs/run, gate 0", name, allocs)
		}
	}
}

// TestAllocGateProviderRoutedValidate repeats the warm-token validation
// gate through the provider-routed construction path (platform.NewFor
// with the non-default provider, token minted via the code flow). The
// provider indirection must not add per-call allocations over the
// default platform's budget.
func TestAllocGateProviderRoutedValidate(t *testing.T) {
	prov := provider.MustGet("pictogram")
	clock := simclock.NewSimulated(benchEpoch)
	p := platform.NewFor(prov, clock, nil)
	app := p.Apps.RegisterUnreviewed(apps.Config{
		Name:        "gate companion",
		RedirectURI: "https://gate-companion.example/cb",
		Lifetime:    apps.LongTerm,
		Permissions: []string{prov.ScopePublish()},
	})
	acct := p.Graph.CreateAccount("gate-member", "IN", clock.Now())
	client := platform.NewLocalClient(p)
	code, err := client.AuthorizeCode(app.ID, app.RedirectURI, acct.ID, []string{prov.ScopePublish()})
	if err != nil {
		t.Fatal(err)
	}
	tok, err := client.ExchangeCode(app.ID, app.Secret, app.RedirectURI, code)
	if err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.OAuth.Validate(tok); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("pictogram OAuth.Validate: %.0f allocs/run", allocs)
	// Same budget as the default provider: the TokenInfo copy plus slack.
	if limit := float64(4); allocs > limit {
		t.Errorf("pictogram OAuth.Validate = %.0f allocs/run, gate %v", allocs, limit)
	}
}
