package repro

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/defense"
	"repro/internal/graphapi"
	"repro/internal/oauthsim"
	"repro/internal/platform"
	"repro/internal/provider"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

// Allocation gates for the two hottest store paths. These are regression
// tripwires, not targets: the bounds carry ~2x headroom over measured
// HEAD so noise and minor refactors pass, while an accidental per-op
// allocation (a closure capture, a map rebuild, fmt in the hot loop)
// fails loudly. CI runs them in the bench-trajectory job alongside
// `repro bench`.

// TestAllocGateAddLikeBatch bounds the per-burst allocation count of the
// store-level batch apply — the collusion delivery hot path. A 50-op
// burst against a warm post must stay O(burst): each like appends one
// edge and one per-account entry, so the budget is a small multiple of
// the burst size, never O(members) or per-op map churn.
func TestAllocGateAddLikeBatch(t *testing.T) {
	const burst = 50
	w := newBenchWorld(t, 1)
	graph := w.p.Graph
	accounts := make([]string, burst)
	for i := range accounts {
		accounts[i] = graph.CreateAccount(fmt.Sprintf("gate-liker-%d", i), "IN", w.clock.Now()).ID
	}
	meta := socialgraph.WriteMeta{SourceIP: "192.0.2.1", At: w.clock.Now()}
	ops := make([]socialgraph.LikeOp, burst)

	allocs := testing.AllocsPerRun(20, func() {
		post, err := graph.CreatePost(w.post.AuthorID, "p", socialgraph.WriteMeta{At: w.clock.Now()})
		if err != nil {
			t.Fatal(err)
		}
		for j, acct := range accounts {
			ops[j] = socialgraph.LikeOp{AccountID: acct, ObjectID: post.ID, Meta: meta}
		}
		for _, err := range graph.AddLikeBatch(ops) {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	t.Logf("CreatePost+AddLikeBatch(%d ops): %.0f allocs/run", burst, allocs)
	// Measured at HEAD: ~35 allocs for CreatePost + 50 likes (<1/like —
	// edges append into pre-grown slices). Gate at 128: amortized slice
	// growth passes, anything per-op (~50+ new allocs) trips.
	if limit := float64(128); allocs > limit {
		t.Errorf("CreatePost+AddLikeBatch(%d ops) = %.0f allocs/run, gate %v", burst, allocs, limit)
	}
}

// TestAllocGateTokenValidate bounds token validation — on the critical
// path of every Graph API call. Lookup of a warm token must not allocate
// per call beyond the returned TokenInfo copy.
func TestAllocGateTokenValidate(t *testing.T) {
	w := newBenchWorld(t, 1)
	tok := w.tokens[0]

	allocs := testing.AllocsPerRun(100, func() {
		if _, err := w.p.OAuth.Validate(tok); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("OAuth.Validate: %.0f allocs/run", allocs)
	// Measured at HEAD: 1 alloc per Validate (the TokenInfo copy). Gate at 4.
	if limit := float64(4); allocs > limit {
		t.Errorf("OAuth.Validate = %.0f allocs/run, gate %v", allocs, limit)
	}
}

// TestAllocGateProviderCheckToken pins every registered provider's token
// format check at zero allocations. CheckToken fronts each validation and
// runs on attacker-supplied strings (the scanner feeds it candidate
// tokens), so even the signed pictogram format must verify its checksum
// without heap traffic.
func TestAllocGateProviderCheckToken(t *testing.T) {
	for _, name := range provider.Names() {
		prov := provider.MustGet(name)
		tok := prov.MintToken()
		allocs := testing.AllocsPerRun(100, func() {
			if err := prov.CheckToken(tok); err != nil {
				t.Fatalf("%s: freshly minted token fails CheckToken: %v", name, err)
			}
		})
		t.Logf("%s CheckToken: %.0f allocs/run", name, allocs)
		if allocs > 0 {
			t.Errorf("%s CheckToken = %.0f allocs/run, gate 0", name, allocs)
		}
	}
}

// TestAllocGateProviderRoutedValidate repeats the warm-token validation
// gate through the provider-routed construction path (platform.NewFor
// with the non-default provider, token minted via the code flow). The
// provider indirection must not add per-call allocations over the
// default platform's budget.
func TestAllocGateProviderRoutedValidate(t *testing.T) {
	prov := provider.MustGet("pictogram")
	clock := simclock.NewSimulated(benchEpoch)
	p := platform.NewFor(prov, clock, nil)
	app := p.Apps.RegisterUnreviewed(apps.Config{
		Name:        "gate companion",
		RedirectURI: "https://gate-companion.example/cb",
		Lifetime:    apps.LongTerm,
		Permissions: []string{prov.ScopePublish()},
	})
	acct := p.Graph.CreateAccount("gate-member", "IN", clock.Now())
	client := platform.NewLocalClient(p)
	code, err := client.AuthorizeCode(app.ID, app.RedirectURI, acct.ID, []string{prov.ScopePublish()})
	if err != nil {
		t.Fatal(err)
	}
	tok, err := client.ExchangeCode(app.ID, app.Secret, app.RedirectURI, code)
	if err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.OAuth.Validate(tok); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("pictogram OAuth.Validate: %.0f allocs/run", allocs)
	// Same budget as the default provider: the TokenInfo copy plus slack.
	if limit := float64(4); allocs > limit {
		t.Errorf("pictogram OAuth.Validate = %.0f allocs/run, gate %v", allocs, limit)
	}
}

// TestAllocGateAddLikeBatchSteadyState pins the store's batch-apply path
// at exactly zero allocations per burst once the chunk pools are warm.
// Each round sweeps the previous round's edges out (returning their
// chunks to the per-shard free lists) and re-likes the same post, so
// steady state exercises the full recycle loop: evict → pool → reuse.
// Unlike TestAllocGateAddLikeBatch above — which tolerates amortized
// slice growth on a cold store — this gate is strict: any per-op or
// per-burst heap traffic (a grown slice, a rebuilt map, an escaping
// closure) is a regression against the chunked-history design.
func TestAllocGateAddLikeBatchSteadyState(t *testing.T) {
	const burst = 50
	graph := socialgraph.NewWithShards(8)
	graph.SetRetentionWindow(30 * time.Minute)
	now := benchEpoch
	accounts := make([]string, burst)
	for i := range accounts {
		accounts[i] = graph.CreateAccount("", "IN", now).ID
	}
	post, err := graph.CreatePost(accounts[0], "p", socialgraph.WriteMeta{At: now})
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]socialgraph.LikeOp, burst)
	errs := make([]error, burst)
	round := func() {
		now = now.Add(time.Hour)
		graph.RetentionSweep(now)
		meta := socialgraph.WriteMeta{SourceIP: "192.0.2.1", At: now}
		for j, acct := range accounts {
			ops[j] = socialgraph.LikeOp{AccountID: acct, ObjectID: post.ID, Meta: meta}
		}
		graph.AddLikeBatchInto(ops, errs)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm the pools: the first rounds grow chunk free lists, history
	// headers, and map buckets to steady-state size.
	for i := 0; i < 8; i++ {
		round()
	}
	allocs := testing.AllocsPerRun(10, round)
	t.Logf("sweep+AddLikeBatchInto(%d ops): %.0f allocs/run", burst, allocs)
	if allocs != 0 {
		t.Errorf("steady-state sweep+AddLikeBatchInto(%d ops) = %.0f allocs/run, gate 0", burst, allocs)
	}
}

// TestAllocGateStoreDenialErrors pins the store's common like denial
// kinds at zero allocations: denials are what a defended platform serves
// a collusion network on nearly every request, so they must return
// preformatted sentinel errors, never build fmt.Errorf values per call.
func TestAllocGateStoreDenialErrors(t *testing.T) {
	graph := socialgraph.NewWithShards(8)
	now := benchEpoch
	liker := graph.CreateAccount("liker", "IN", now)
	susp := graph.CreateAccount("suspended", "IN", now)
	post, err := graph.CreatePost(liker.ID, "p", socialgraph.WriteMeta{At: now})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.SetSuspended(susp.ID, true); err != nil {
		t.Fatal(err)
	}
	meta := socialgraph.WriteMeta{At: now}
	if err := graph.AddLike(liker.ID, post.ID, meta); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		call func() error
		want error
	}{
		{"duplicate like", func() error { return graph.AddLike(liker.ID, post.ID, meta) }, socialgraph.ErrAlreadyLiked},
		{"suspended liker", func() error { return graph.AddLike(susp.ID, post.ID, meta) }, socialgraph.ErrSuspended},
		{"unknown liker", func() error { return graph.AddLike("4242424242", post.ID, meta) }, socialgraph.ErrNotFound},
		{"not liked", func() error { return graph.RemoveLike(susp.ID, post.ID) }, socialgraph.ErrNotLiked},
	}
	for _, tc := range cases {
		if err := tc.call(); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if tc.call() == nil {
				t.Fatalf("%s: denial unexpectedly succeeded", tc.name)
			}
		})
		t.Logf("%s: %.0f allocs/run", tc.name, allocs)
		if allocs > 0 {
			t.Errorf("%s = %.0f allocs/run, gate 0", tc.name, allocs)
		}
	}
}

// TestAllocGateGraphAPIDenial pins the full Graph API like path at zero
// allocations when a rate-limit policy denies the request. Telemetry is
// detached (nil observer) so the gate measures the API's own work: token
// validation (shared-scopes TokenInfo), registry lookup (shared app
// record), policy evaluation (preformatted limiter reasons), and the
// interned denial error. This is the path a throttled collusion network
// hammers hardest — the paper's Sec. 6.1 limiter turns nearly the whole
// offered load into denials.
func TestAllocGateGraphAPIDenial(t *testing.T) {
	clock := simclock.NewSimulated(benchEpoch)
	p := platform.New(clock, nil)
	p.API.SetObserver(nil)
	app := p.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc.example/cb",
		ClientFlowEnabled: true,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
	acct := p.Graph.CreateAccount("member", "IN", clock.Now())
	post, err := p.Graph.CreatePost(acct.ID, "p", socialgraph.WriteMeta{At: clock.Now()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.OAuth.Authorize(oauthsim.AuthorizeRequest{
		AppID:        app.ID,
		RedirectURI:  app.RedirectURI,
		ResponseType: oauthsim.ResponseToken,
		Scopes:       []string{apps.PermPublishActions},
		AccountID:    acct.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.API.Chain().Append(defense.NewTokenRateLimiter(clock, 0, time.Hour))
	c := graphapi.CallContext{AccessToken: res.AccessToken, SourceIP: "198.51.100.7"}
	// Warm call: builds and interns the denial error.
	if err := p.API.Like(c, post.ID); err == nil {
		t.Fatal("rate-limited like unexpectedly succeeded")
	} else if got := graphapi.ErrCode(err); got != graphapi.CodeRateLimited {
		t.Fatalf("denial code = %d, want %d (%v)", got, graphapi.CodeRateLimited, err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if p.API.Like(c, post.ID) == nil {
			t.Fatal("rate-limited like unexpectedly succeeded")
		}
	})
	t.Logf("rate-limited Like: %.0f allocs/run", allocs)
	if allocs > 0 {
		t.Errorf("rate-limited Like = %.0f allocs/run, gate 0", allocs)
	}
}
