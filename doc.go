// Package repro is a full executable reproduction of "Measuring and
// Mitigating OAuth Access Token Abuse by Collusion Networks" (Farooqi,
// Zaffar, Leontiadis, Shafiq — IMC 2017).
//
// The original study ran against the live Facebook platform; this module
// rebuilds the whole ecosystem in Go — the OAuth 2.0 social platform and
// Graph API, the third-party application directory, the collusion network
// services, the honeypot measurement apparatus, and the countermeasure
// stack — and re-runs every table and figure of the paper's evaluation
// against it. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-versus-measured results.
//
// Entry points:
//
//   - internal/core: the Study type — build the world, milk collusion
//     networks with honeypots, deploy countermeasures;
//   - internal/experiments: one driver per table/figure;
//   - cmd/repro: regenerate any experiment from the command line;
//   - examples/: runnable walkthroughs of the leak, the milking
//     methodology, the countermeasure campaign, and the app scanner.
package repro
