// Detection: the paper's Section 8 proposal made concrete — train a
// machine-learning detector for access token abuse and compare it with
// the temporal clustering that collusion networks evade.
//
// The example simulates four days of mixed traffic (two collusion
// networks spending pooled tokens; organic users liking friends' posts
// first-party), extracts per-account behavioural features, trains a
// logistic regression, and evaluates on held-out accounts. It then purges
// the fake likes of every flagged account — the remediation loop.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/defense"
	"repro/internal/detection"
	"repro/internal/workload"
)

func main() {
	s, err := workload.BuildScenario(workload.Options{
		Scale:      3, // keep pools ≫ quota: SynchroTrap's blind regime
		MinMembers: 100,
		Networks:   []string{"kingliker.com", "rockliker.net"},
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	organic, err := s.AddOrganicUsers(400, 11)
	if err != nil {
		log.Fatal(err)
	}
	s.BuildFriendGraph(6, 11)

	trap := defense.NewSynchroTrap(time.Minute, 0.5, 3, 20)
	s.Platform.Chain().Append(defense.NewSynchroTap(trap))

	fmt.Println("simulating 4 days of mixed collusion + organic traffic...")
	for day := 0; day < 4; day++ {
		organic.SimulateDay(0.5, 4)
		for hour := 0; hour < 24; hour++ {
			for _, ni := range s.Networks {
				if hour%3 == 0 {
					ni.BackgroundRequests(2)
				}
			}
			s.Clock.Advance(time.Hour)
		}
	}

	var labeled []detection.Labeled
	for _, ni := range s.Networks {
		for _, m := range ni.Members {
			labeled = append(labeled, detection.Labeled{AccountID: m.ID, Colluding: true})
		}
	}
	for _, u := range organic.Users {
		labeled = append(labeled, detection.Labeled{AccountID: u.ID, Colluding: false})
	}
	ds := detection.BuildDataset(s.Platform.Graph, labeled)
	train, test := ds.Split(0.3)
	model, err := detection.Train(train, detection.TrainConfig{Epochs: 300, LearningRate: 0.3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d accounts; feature weights:\n", len(train.X))
	for i, name := range detection.FeatureNames {
		fmt.Printf("  %-22s %+.2f\n", name, model.Weights[i])
	}

	m := detection.Evaluate(model, test, 0.5)
	fmt.Printf("\nheld-out accounts: %d\n", len(test.X))
	fmt.Printf("precision=%.3f recall=%.3f F1=%.3f AUC=%.3f (FP=%d)\n",
		m.Precision, m.Recall, m.F1, m.AUC, m.FP)

	clustered := 0
	for _, c := range trap.Detect() {
		clustered += len(c.Accounts)
	}
	fmt.Printf("SynchroTrap over the same window flagged %d accounts (the paper's Sec. 6.3 result)\n", clustered)

	var flagged []string
	for i, x := range test.X {
		if model.Predict(x, 0.5) {
			flagged = append(flagged, test.IDs[i])
		}
	}
	report := defense.PurgeLikesReport(s.Platform.Graph, flagged)
	fmt.Printf("remediation: purged %d fake likes from %d objects across %d flagged accounts\n",
		report.LikesRemoved, report.ObjectsTouched, report.AccountsProcessed)
}
