// Countermeasures: a miniature Figure 5 — deploy the Section 6 defenses
// one by one against a live collusion network and watch the delivered
// likes respond.
//
// Timeline (in simulated days):
//
//	day  3   token rate limit reduced      → no effect (big pool)
//	day  6   invalidate all milked tokens  → collapse, partial recovery
//	day  9   per-IP like caps              → no effect (6,000-IP pool)
//	day 12   block the bulletproof ASes    → the network goes dark
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	study, err := core.NewStudy(workload.Options{
		Scale:    200,
		Networks: []string{"hublaa.me"},
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ni := study.Scenario.Networks[0]
	cm := study.Countermeasures()
	cm.SetTokenRateLimit(200, 24*time.Hour) // the pre-existing generous limit

	fmt.Printf("target: %s, %d members, %d likes/request\n\n",
		ni.Spec.Name, ni.Net.MembershipSize(), ni.Spec.LikesPerRequest)
	fmt.Println("day  avg likes/post   event")

	for day := 1; day <= 14; day++ {
		event := ""
		switch day {
		case 3:
			cm.SetTokenRateLimit(8, 24*time.Hour)
			event = "← token rate limit reduced 25x"
		case 6:
			n := cm.InvalidateMilkedAll()
			event = fmt.Sprintf("← invalidated %d milked accounts", n)
		case 9:
			cm.DeployIPRateLimits(100, 400)
			event = "← per-IP like caps"
		case 12:
			cm.BlockASes(workload.ASBulletproofA, workload.ASBulletproofB)
			event = "← bulletproof ASes blocked"
		}

		// Fresh members trickle in; the honeypot milks 6 posts a day.
		if err := ni.JoinFresh(ni.ScaledMembership / 50); err != nil {
			log.Fatal(err)
		}
		sum, n := 0, 0
		for hour := 0; hour < 24; hour++ {
			if hour%4 == 0 && n < 6 {
				res := study.MilkNetwork(ni.Spec.Name)
				if res.Err == nil {
					sum += res.Delivered
				}
				n++
			}
			ni.BackgroundRequests(1)
			study.AdvanceHour()
		}
		fmt.Printf("%3d  %14.1f   %s\n", day, float64(sum)/float64(n), event)
	}

	fmt.Printf("\npolicies deployed: %v\n", cm.ActivePolicies())
	fmt.Printf("denials by policy: %v\n", study.Scenario.Platform.Chain().Denials())
}
