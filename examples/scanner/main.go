// Scanner: probe third-party applications for access-token leakage over
// real HTTP — the Section 2.2 tool against a synthetic app directory.
//
// The example registers four apps spanning the security-settings matrix,
// serves the platform on an httptest listener, and scans each login URL
// exactly as the paper's Selenium tool did: walk the dialog on a test
// account, grab the fragment token, then try to read and write with it
// and no application secret.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/scanner"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

func main() {
	clock := simclock.NewSimulated(time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC))
	p := platform.New(clock, nil)
	srv := p.ServeHTTPTest()
	defer srv.Close()

	specs := []struct {
		name          string
		clientFlow    bool
		requireSecret bool
		lifetime      apps.TokenLifetime
	}{
		{"Streaming Service", true, false, apps.LongTerm}, // the dangerous kind
		{"Casual Game", true, false, apps.ShortTerm},      // leaky but short-lived
		{"Server-Side CRM", false, false, apps.LongTerm},  // implicit flow off
		{"Proofed Player", true, true, apps.LongTerm},     // appsecret_proof on
	}
	var entries []scanner.AppDirectoryEntry
	for _, s := range specs {
		app := p.Apps.Register(apps.Config{
			Name:              s.name,
			RedirectURI:       "https://app.example/cb",
			ClientFlowEnabled: s.clientFlow,
			RequireAppSecret:  s.requireSecret,
			Lifetime:          s.lifetime,
			Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
		})
		entries = append(entries, scanner.AppDirectoryEntry{
			App:      app,
			LoginURL: scanner.LoginURL(srv.URL, app.ID, app.RedirectURI, app.Permissions),
		})
	}

	testAcct := p.Graph.CreateAccount("scanner-test", "US", clock.Now())
	testPost, err := p.Graph.CreatePost(testAcct.ID, "scanner probe", socialgraph.WriteMeta{At: clock.Now()})
	if err != nil {
		log.Fatal(err)
	}
	sc := scanner.New(srv.URL, testAcct.ID, testPost.ID)

	fmt.Printf("%-20s %-12s %-11s %s\n", "APP", "VERDICT", "TOKEN LIFE", "DETAIL")
	results := sc.ScanAll(entries)
	for _, r := range results {
		verdict, life, detail := "secure", "-", r.Reason
		if r.Susceptible {
			verdict = "SUSCEPTIBLE"
			life = "short-term"
			if r.LongTerm {
				life = "long-term"
			}
			detail = fmt.Sprintf("token valid %v, replayable without secret", r.ExpiresIn)
		}
		fmt.Printf("%-20s %-12s %-11s %s\n", r.Name, verdict, life, detail)
	}
	sum := scanner.Summarize(results)
	fmt.Printf("\n%d scanned: %d susceptible (%d long-term) — the paper found 55/100 with 9 long-term\n",
		sum.Scanned, sum.Susceptible, sum.SusceptibleLongTerm)
}
