// Milking: infiltrate a collusion network with a honeypot and estimate
// its membership (the Section 4 methodology, Figure 4's curve).
//
// The example builds mg-likers.com at 1/500 of its measured population,
// joins it with a honeypot account, and milks it 40 posts deep. Watch
// the cumulative-unique-accounts column flatten while likes grow
// linearly: that gap is the repetition that turns milking into a
// membership estimator.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	study, err := core.NewStudy(workload.Options{
		Scale:    500,
		Networks: []string{"mg-likers.com"},
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	ni := study.Scenario.Networks[0]
	fmt.Printf("infiltrated %s: %d members pooled, %d likes per request\n\n",
		ni.Spec.Name, ni.Net.MembershipSize(), ni.Spec.LikesPerRequest)

	fmt.Println("post  delivered  cum.likes  cum.unique")
	for i := 0; i < 40; i++ {
		res := study.MilkNetwork(ni.Spec.Name)
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		curve := study.Estimators[ni.Spec.Name].Curve()
		last := curve[len(curve)-1]
		fmt.Printf("%4d  %9d  %9d  %10d\n", last.Step, res.Delivered, last.CumulativeEvents, last.CumulativeUnique)
		study.AdvanceHour()
	}

	est := study.Estimators[ni.Spec.Name]
	fmt.Printf("\nmembership estimate (lower bound): %d of %d actual pooled members (%.0f%% milked)\n",
		est.MembershipEstimate(), ni.Net.MembershipSize(),
		100*float64(est.MembershipEstimate())/float64(ni.Net.MembershipSize()))
	fmt.Printf("the paper estimated 177,665 members for mg-likers.com from 1,537 posts\n")
}
