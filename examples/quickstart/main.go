// Quickstart: the OAuth access-token leak end to end, in one file.
//
// It builds the simulated platform, registers two third-party apps — one
// with the weak security settings the paper exploits (client-side flow
// enabled, no application secret required on API calls) and one locked
// down — then plays the attacker: leak a token through the implicit
// flow's URL fragment, replay it from a completely different vantage
// point to manufacture a like, and watch the platform stop the same
// replay once the token is invalidated.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialgraph"
)

func main() {
	clock := simclock.NewSimulated(time.Date(2015, time.November, 1, 0, 0, 0, 0, time.UTC))
	p := platform.New(clock, nil)

	// A popular app with weak settings (HTC Sense in the paper) and a
	// hardened one.
	weak := p.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc-sense.example/callback",
		ClientFlowEnabled: true,  // implicit flow allowed (Fig. 2a)
		RequireAppSecret:  false, // no appsecret_proof demanded (Fig. 2b)
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
	hardened := p.Apps.Register(apps.Config{
		Name:              "Hardened App",
		RedirectURI:       "https://hardened.example/callback",
		ClientFlowEnabled: false,
		RequireAppSecret:  true,
		Lifetime:          apps.ShortTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
	})
	fmt.Printf("registered %q (susceptible=%v) and %q (susceptible=%v)\n\n",
		weak.Name, weak.Susceptible(), hardened.Name, hardened.Susceptible())

	// A member and a post to manipulate.
	member := p.Graph.CreateAccount("colluding-member", "IN", clock.Now())
	author := p.Graph.CreateAccount("target-author", "IN", clock.Now())
	post, err := p.Graph.CreatePost(author.ID, "look at my amazing status", socialgraph.WriteMeta{At: clock.Now()})
	if err != nil {
		log.Fatal(err)
	}

	// The platform is a real HTTP service; everything below goes over the
	// wire exactly as a browser/collusion site would see it.
	srv := p.ServeHTTPTest()
	defer srv.Close()
	client := platform.NewHTTPClient(srv.URL)

	// Step 1 — the member walks the implicit flow; the access token comes
	// back in the redirect URI fragment, visible at the client side. This
	// is the string collusion networks tell their members to copy out of
	// the address bar (Fig. 3).
	token, err := client.AuthorizeImplicit(weak.ID, weak.RedirectURI, member.ID,
		[]string{apps.PermPublicProfile, apps.PermPublishActions})
	if err != nil {
		log.Fatal(err)
	}
	//collusionvet:allow tokenflow -- showing the leaked token IS the demo (truncated to 24 chars)
	fmt.Printf("leaked token (from URL fragment): %.24s...\n", token)

	// Step 2 — anyone holding the bearer token can replay it from
	// anywhere: no app secret, no session, a different source IP.
	if err := client.Like(token, post.ID, "203.0.113.66"); err != nil {
		log.Fatal(err)
	}
	likes := p.Graph.Likes(post.ID)
	fmt.Printf("replayed like recorded: account=%s via app=%s from IP=%s\n",
		likes[0].AccountID, likes[0].AppID, likes[0].SourceIP)

	// The hardened app refuses the implicit flow outright.
	if _, err := client.AuthorizeImplicit(hardened.ID, hardened.RedirectURI, member.ID,
		[]string{apps.PermPublishActions}); err != nil {
		fmt.Printf("hardened app blocks the leak: %v\n", err)
	}

	// Step 3 — the countermeasure: invalidate the leaked token (Sec. 6.2)
	// and the replay stops working.
	p.OAuth.Invalidate(token, "honeypot-milked")
	post2, _ := p.Graph.CreatePost(author.ID, "another status", socialgraph.WriteMeta{At: clock.Now()})
	if err := client.Like(token, post2.ID, "203.0.113.66"); err != nil {
		fmt.Printf("after invalidation the token is dead: %v\n", err)
	}
}
