// Command collusionvet is the repo's invariant checker: a go vet
// -vettool multichecker enforcing the token-hygiene, lock-order, and
// determinism rules the paper reproduction depends on (DESIGN.md
// "Static invariants").
//
// Usage:
//
//	go build -o /tmp/collusionvet ./cmd/collusionvet
//	go vet -vettool=/tmp/collusionvet ./...
//
// or, equivalently, standalone (it shells out to go vet itself):
//
//	/tmp/collusionvet ./...
//	/tmp/collusionvet -json ./...          # machine-readable findings
//	/tmp/collusionvet -tokenflow=false ./... # disable one analyzer
//
// Suppress a false positive inline with
// `//collusionvet:allow <analyzer> -- reason`, or opt a whole package
// out with `//collusionvet:skip <analyzer> -- reason` in any file.
package main

import (
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/secretcompare"
	"repro/internal/analysis/simclock"
	"repro/internal/analysis/tokenflow"
	"repro/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(
		tokenflow.Analyzer,
		lockorder.Analyzer,
		simclock.Analyzer,
		secretcompare.Analyzer,
	)
}
