package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildTool compiles the checker into a temp dir and returns its path.
func buildTool(t *testing.T, root string) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "collusionvet")
	if runtime.GOOS == "windows" {
		tool += ".exe"
	}
	build := exec.Command("go", "build", "-o", tool, "./cmd/collusionvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/collusionvet: %v\n%s", err, out)
	}
	return tool
}

// TestVetCleanTree is the end-to-end smoke test: build the checker and
// drive it over the whole module through `go vet -vettool`, proving
// both that the driver speaks cmd/go's protocol (-V=full, -flags,
// vet.cfg round-trip) and that the merged tree carries no unsuppressed
// violations of any collusionvet invariant.
func TestVetCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the module and vets every package")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tool := buildTool(t, root)

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("collusionvet reported violations: %v\n%s", err, out)
	}

	// JSON mode must also succeed and emit the x/tools-shaped envelope
	// (cmd/go relays the tool's stdout onto its stderr under # headers).
	vetJSON := exec.Command("go", "vet", "-vettool="+tool, "-json", "./internal/redact")
	vetJSON.Dir = root
	out, err := vetJSON.CombinedOutput()
	if err != nil {
		t.Fatalf("collusionvet -json: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), `"repro/internal/redact"`) {
		t.Fatalf("-json output missing package envelope:\n%s", out)
	}
}

// TestVetCatchesViolation proves the go vet integration actually fails
// the build when an invariant is broken, using an overlay that plants a
// token-logging line in a scratch package.
func TestVetCatchesViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the module and runs go vet")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tool := buildTool(t, root)

	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "leak.go"), `package scratch

import "fmt"

func Leak(accessToken string) string {
	return fmt.Sprintf("token=%s", accessToken)
}
`)
	vet := exec.Command("go", "vet", "-vettool="+tool, ".")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on a planted token leak:\n%s", out)
	}
	if !strings.Contains(string(out), "tokenflow") {
		t.Fatalf("diagnostic missing analyzer name:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
