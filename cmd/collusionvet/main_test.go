package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildTool compiles the checker into a temp dir and returns its path.
func buildTool(t *testing.T, root string) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "collusionvet")
	if runtime.GOOS == "windows" {
		tool += ".exe"
	}
	build := exec.Command("go", "build", "-o", tool, "./cmd/collusionvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/collusionvet: %v\n%s", err, out)
	}
	return tool
}

// TestVetCleanTree is the end-to-end smoke test: build the checker and
// drive it over the whole module through `go vet -vettool`, proving
// both that the driver speaks cmd/go's protocol (-V=full, -flags,
// vet.cfg round-trip) and that the merged tree carries no unsuppressed
// violations of any collusionvet invariant.
func TestVetCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the module and vets every package")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tool := buildTool(t, root)

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("collusionvet reported violations: %v\n%s", err, out)
	}

	// JSON mode must also succeed and emit the x/tools-shaped envelope
	// (cmd/go relays the tool's stdout onto its stderr under # headers).
	vetJSON := exec.Command("go", "vet", "-vettool="+tool, "-json", "./internal/redact")
	vetJSON.Dir = root
	out, err := vetJSON.CombinedOutput()
	if err != nil {
		t.Fatalf("collusionvet -json: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), `"repro/internal/redact"`) {
		t.Fatalf("-json output missing package envelope:\n%s", out)
	}
}

// TestVetCatchesViolation proves the go vet integration actually fails
// the build when an invariant is broken, using an overlay that plants a
// token-logging line in a scratch package.
func TestVetCatchesViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the module and runs go vet")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tool := buildTool(t, root)

	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "leak.go"), `package scratch

import "fmt"

func Leak(accessToken string) string {
	return fmt.Sprintf("token=%s", accessToken)
}
`)
	vet := exec.Command("go", "vet", "-vettool="+tool, ".")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on a planted token leak:\n%s", out)
	}
	if !strings.Contains(string(out), "tokenflow") {
		t.Fatalf("diagnostic missing analyzer name:\n%s", out)
	}
}

// TestFactsDumpGolden pins the decoded fact set of internal/oauthsim:
// the exact ReturnsCredential / ParamIsCredential / CredField lines the
// package exports to its importers. A diff here means the taint
// summaries changed — deliberate analyzer work, or an accidental
// regression in the facts pipeline.
func TestFactsDumpGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the module and analyzes the oauthsim closure")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tool := buildTool(t, root)

	dump := exec.Command(tool, "-facts", "repro/internal/oauthsim")
	dump.Dir = root
	out, err := dump.Output()
	if err != nil {
		t.Fatalf("collusionvet -facts: %v", err)
	}
	golden, err := os.ReadFile(filepath.Join(root, "cmd", "collusionvet", "testdata", "oauthsim.facts"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(golden) {
		t.Errorf("-facts repro/internal/oauthsim diverged from testdata/oauthsim.facts:\ngot:\n%s\nwant:\n%s", out, golden)
	}
}

// TestVetCrossPackageFacts drives the full vet protocol across a
// package boundary: a scratch module whose root package logs a value
// returned by an innocently named helper in a second package. The
// helper's name says nothing, so only the ReturnsCredential fact
// carried in the dependency's .vetx file (PackageVetx wiring) can make
// the leak visible to the root package's analysis.
func TestVetCrossPackageFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the module and runs go vet")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tool := buildTool(t, root)

	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "credlib", "credlib.go"), `package credlib

// Mint returns a bearer credential under an innocent name.
func Mint() string {
	secret := "opaque"
	return secret
}
`)
	writeFile(t, filepath.Join(dir, "leak.go"), `package scratch

import (
	"log"

	"scratch/credlib"
)

func Leak() {
	c := credlib.Mint()
	log.Printf("session: %s", c)
}
`)
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on a cross-package credential leak:\n%s", out)
	}
	if !strings.Contains(string(out), "tokenflow") || !strings.Contains(string(out), "leak.go") {
		t.Fatalf("expected a tokenflow diagnostic in leak.go, got:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
