package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// `repro bench` is the benchmark trajectory harness: it runs the repo's
// Benchmark* wall under controlled iteration counts, parses the standard
// `go test -bench` output, and emits a schema-versioned JSON file — one
// point on the performance trajectory the allocation-free-hot-path work
// is judged against. `-compare old.json` diffs two points and exits
// nonzero when ns/op or allocs/op regress past the threshold, which is
// what the CI bench-trajectory job and local A/B runs both key off.

// benchSchema versions the trajectory file format. Bump on any
// incompatible change; -compare refuses files from another schema.
const benchSchema = "repro-bench/1"

// BenchResult is one benchmark's aggregated measurements. With -count>1
// the values are means over the runs.
type BenchResult struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"` // custom b.ReportMetric units
}

// BenchFile is the trajectory file `repro bench` emits.
type BenchFile struct {
	Schema     string        `json:"schema"`
	Generated  string        `json:"generated"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchtime  string        `json:"benchtime"`
	Count      int           `json:"count"`
	Pattern    string        `json:"pattern"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	pattern := fs.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := fs.String("benchtime", "1x", "go test -benchtime value (fixed -Nx iterations keep trajectory points comparable)")
	count := fs.Int("count", 1, "runs per benchmark; results are averaged")
	pkg := fs.String("pkg", ".", "package holding the benchmarks")
	timeout := fs.Duration("timeout", 20*time.Minute, "go test timeout")
	out := fs.String("out", "BENCH_8.json", "output trajectory file")
	input := fs.String("input", "", "parse an existing trajectory file instead of running benchmarks (for -compare)")
	compare := fs.String("compare", "", "baseline trajectory file to diff against")
	threshold := fs.Float64("threshold", 20, "regression threshold in percent on ns/op for -compare (and allocs/op unless -allocs-threshold is set)")
	allocsThreshold := fs.Float64("allocs-threshold", -1, "regression threshold in percent on allocs/op for -compare; -1 inherits -threshold (allocs/op is deterministic, so CI pins it far tighter than the noisy ns/op bound)")
	fs.Parse(args)
	if *allocsThreshold < 0 {
		*allocsThreshold = *threshold
	}

	var file BenchFile
	if *input != "" {
		f, err := loadBenchFile(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro bench: %v\n", err)
			os.Exit(1)
		}
		file = f
	} else {
		results, err := execBenchmarks(*pkg, *pattern, *benchtime, *count, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro bench: %v\n", err)
			os.Exit(1)
		}
		if len(results) == 0 {
			fmt.Fprintf(os.Stderr, "repro bench: no benchmarks matched %q in %s\n", *pattern, *pkg)
			os.Exit(1)
		}
		file = BenchFile{
			Schema:     benchSchema,
			Generated:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Benchtime:  *benchtime,
			Count:      *count,
			Pattern:    *pattern,
			Benchmarks: results,
		}
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "repro bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d benchmarks (%s, -benchtime %s, -count %d)\n",
			*out, len(file.Benchmarks), file.GoVersion, *benchtime, *count)
	}

	if *compare == "" {
		return
	}
	base, err := loadBenchFile(*compare)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro bench: %v\n", err)
		os.Exit(1)
	}
	if regressions := printComparison(os.Stdout, base, file, *threshold, *allocsThreshold); regressions > 0 {
		fmt.Fprintf(os.Stderr, "repro bench: %d benchmark(s) regressed past %.0f%% ns/op or %.0f%% allocs/op vs %s\n",
			regressions, *threshold, *allocsThreshold, *compare)
		os.Exit(1)
	}
}

// execBenchmarks shells out to the go toolchain (the benchmarks live in
// _test.go files, unreachable from a binary) and parses its output.
func execBenchmarks(pkg, pattern, benchtime string, count int, timeout time.Duration) ([]BenchResult, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count),
		"-timeout", timeout.String(), pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	acc := make(map[string]*BenchResult)
	var order []string
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // keep the familiar live output
		r, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if prev, seen := acc[r.Name]; seen {
			mergeBenchResult(prev, r)
		} else {
			cp := r
			acc[r.Name] = &cp
			order = append(order, r.Name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	results := make([]BenchResult, 0, len(order))
	for _, name := range order {
		r := *acc[name]
		if r.Runs > 1 {
			n := float64(r.Runs)
			r.NsPerOp /= n
			r.BytesPerOp /= n
			r.AllocsPerOp /= n
			for k := range r.Extra {
				r.Extra[k] /= n
			}
		}
		results = append(results, r)
	}
	return results, nil
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkAddLikeBatch-4   1000  23500 ns/op  1024 B/op  12 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the name so trajectory files
// from differently-sized machines still align.
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	r := BenchResult{Name: name, Runs: 1, Iterations: iters}
	parsed := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			parsed = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, parsed
}

// mergeBenchResult accumulates a repeat run (-count>1) into prev; the
// final averaging happens once all lines are in.
func mergeBenchResult(prev *BenchResult, r BenchResult) {
	prev.Runs++
	prev.Iterations += r.Iterations
	prev.NsPerOp += r.NsPerOp
	prev.BytesPerOp += r.BytesPerOp
	prev.AllocsPerOp += r.AllocsPerOp
	for k, v := range r.Extra {
		if prev.Extra == nil {
			prev.Extra = make(map[string]float64)
		}
		prev.Extra[k] += v
	}
}

func loadBenchFile(path string) (BenchFile, error) {
	var f BenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return f, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, benchSchema)
	}
	return f, nil
}

// printComparison renders per-benchmark deltas (new vs base) and returns
// how many benchmarks regressed past nsThreshold percent on ns/op or
// allocsThreshold percent on allocs/op. The two bounds are separate
// because the two series are not equally noisy: ns/op swings with the
// runner while allocs/op is a property of the code, so CI holds it to a
// few percent. Benchmarks present on only one side are listed but never
// count as regressions — the trajectory grows as the repo does.
func printComparison(w *os.File, base, next BenchFile, nsThreshold, allocsThreshold float64) int {
	baseBy := make(map[string]BenchResult, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[r.Name] = r
	}
	names := make([]string, 0, len(next.Benchmarks))
	for _, r := range next.Benchmarks {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	nextBy := make(map[string]BenchResult, len(next.Benchmarks))
	for _, r := range next.Benchmarks {
		nextBy[r.Name] = r
	}

	regressions := 0
	fmt.Fprintf(w, "%-44s %14s %14s %8s %10s\n", "benchmark", "base ns/op", "new ns/op", "Δns", "Δallocs")
	for _, name := range names {
		nr := nextBy[name]
		br, ok := baseBy[name]
		if !ok {
			fmt.Fprintf(w, "%-44s %14s %14.0f %8s %10s\n", name, "(new)", nr.NsPerOp, "-", "-")
			continue
		}
		dns := pctDelta(br.NsPerOp, nr.NsPerOp)
		dallocs := pctDelta(br.AllocsPerOp, nr.AllocsPerOp)
		mark := ""
		if dns > nsThreshold || dallocs > allocsThreshold {
			regressions++
			mark = "  << REGRESSION"
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %7.1f%% %9.1f%%%s\n",
			name, br.NsPerOp, nr.NsPerOp, dns, dallocs, mark)
	}
	for name := range baseBy {
		if _, ok := nextBy[name]; !ok {
			fmt.Fprintf(w, "%-44s %14s %14s %8s %10s\n", name, "(removed)", "-", "-", "-")
		}
	}
	return regressions
}

// pctDelta is the percent change from base to next; a zero base with a
// nonzero next reads as +100% (something appeared where nothing was).
func pctDelta(base, next float64) float64 {
	if base == 0 {
		if next == 0 {
			return 0
		}
		return 100
	}
	return (next - base) / base * 100
}
