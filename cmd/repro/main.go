// Command repro regenerates the paper's tables and figures from live
// simulation runs.
//
// Usage:
//
//	repro -exp table4              # one experiment
//	repro -exp table1,figure5      # several
//	repro -exp all                 # everything (takes a few minutes)
//	repro -list                    # list experiment IDs
//	repro scale -accounts 1000000  # scale mode: big graph + open-loop load
//	repro bench -out BENCH_8.json  # benchmark trajectory point
//	repro bench -compare old.json  # diff against a previous point
//
// The -scale flag divides the paper's population sizes (default 100);
// -seed fixes the run's randomness so output is reproducible.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "scale" {
		runScale(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		runBench(os.Args[2:])
		return
	}
	exp := flag.String("exp", "", "experiment ID(s), comma separated, or 'all'")
	scale := flag.Int("scale", 100, "population scale divisor (1 = paper scale)")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "text", "output format: text, csv, json")
	out := flag.String("out", "", "also write each experiment to <out>/<id>.<ext>")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "repro: -exp required (try -list)")
		os.Exit(2)
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	for _, id := range ids {
		start := time.Now()
		result, err := experiments.Run(id, *scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", id, err)
			os.Exit(1)
		}
		rendered, err := result.Render(*format)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(rendered)
		if *out != "" {
			path, werr := result.WriteFile(*out, id, *format)
			if werr != nil {
				fmt.Fprintf(os.Stderr, "repro: writing %s: %v\n", id, werr)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		if *format == "text" {
			fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Println()
		}
	}
}
