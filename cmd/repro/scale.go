package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/obs/runtimestats"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// runScale is the `repro scale` subcommand: build a 1M–10M-account graph
// and drive the open-loop load generator against it, measuring wall-clock
// like-latency SLOs (the simulated clock paces arrivals; simclock.Real
// times the applies). With -profile-dir it also captures CPU, heap,
// mutex, and block profiles over the steady-state window — post-warmup
// arrivals through pool drain — and writes them next to a report.json of
// the run, so a profile is always interpretable against the load that
// produced it.
func runScale(args []string) {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	accounts := fs.Int("accounts", 1_000_000, "population size")
	rps := fs.Int("rps", 2000, "target arrival rate (per simulated second)")
	duration := fs.Duration("duration", 60*time.Second, "simulated load duration")
	workers := fs.Int("workers", 0, "apply-pool size (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "store stripe count (0 = default)")
	friends := fs.Float64("friends", 0, "mean friend degree (0 = no friendship edges)")
	retention := fs.Duration("retention", 0, "edge-history retention window (0 = infinite)")
	sweepEvery := fs.Duration("sweep-every", 0, "retention sweep period in simulated time (0 = never)")
	seed := fs.Int64("seed", 1, "random seed")
	profileDir := fs.String("profile-dir", "", "write CPU/heap/mutex/block profiles and report.json for the steady-state window into this directory")
	warmup := fs.Duration("warmup", 0, "simulated warmup excluded from profile capture (0 = duration/10 when profiling)")
	fs.Parse(args)

	fmt.Printf("building %d-account graph (%d stripes requested, GOMAXPROCS %d)...\n",
		*accounts, *shards, runtime.GOMAXPROCS(0))
	t0 := time.Now()
	w, err := workload.BuildScale(workload.ScaleConfig{
		Accounts:        *accounts,
		AvgFriends:      *friends,
		Shards:          *shards,
		RetentionWindow: *retention,
		Seed:            *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro scale: %v\n", err)
		os.Exit(1)
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	fmt.Printf("built in %v: %d pages, %d hot posts, %d friend edges, heap %d MiB\n",
		time.Since(t0).Round(time.Millisecond), len(w.Pages), len(w.Posts),
		w.FriendEdges, mem.HeapAlloc>>20)

	// Runtime families on the same registry /metrics would serve; the
	// sampler feeds per-sweep snapshots into the report.
	sampler := runtimestats.Register(w.Platform.Obs.M(), simclock.Real{})
	sampler.Sample() // baseline so the first sweep's rates have a window

	cfg := workload.LoadConfig{
		TargetRPS:  *rps,
		Duration:   *duration,
		Workers:    *workers,
		SweepEvery: *sweepEvery,
		Timing:     simclock.Real{},
		Seed:       *seed,
		Runtime:    sampler,
	}

	var prof *profileCapture
	if *profileDir != "" {
		if *warmup <= 0 {
			*warmup = *duration / 10
		}
		prof, err = newProfileCapture(*profileDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro scale: %v\n", err)
			os.Exit(1)
		}
		cfg.Warmup = *warmup
		cfg.OnSteadyState = prof.start
		cfg.OnLoadEnd = prof.stop
	}

	fmt.Printf("driving %d rps for %v (simulated)...\n", *rps, *duration)
	rep := w.RunLoad(cfg)

	fmt.Printf("offered %d requests in %v wall (%.0f applied rps)\n",
		rep.Offered, rep.WallElapsed.Round(time.Millisecond), rep.AchievedRPS())
	fmt.Printf("  likes %d (dup %d), comments %d, posts %d\n",
		rep.Likes, rep.DuplicateLikes, rep.Comments, rep.Posts)
	fmt.Printf("  like latency p50 %v  p99 %v\n", rep.P50, rep.P99)
	if rep.Sweeps > 0 {
		fmt.Printf("  retention: %d sweeps evicted %d likes / %d comments / %d activities\n",
			rep.Sweeps, rep.Evicted.Likes, rep.Evicted.Comments, rep.Evicted.Activities)
		for _, s := range rep.Samples {
			fmt.Printf("    sweep %s: retained %d likes, %d comments | heap %d MiB, %d goroutines, GC %d, alloc %.1f MiB/s\n",
				s.At.Format("15:04:05"), s.Retained.Likes, s.Retained.Comments,
				s.Runtime.HeapAllocBytes>>20, s.Runtime.Goroutines,
				s.Runtime.GCCycles, s.Runtime.AllocBytesPerSec/(1<<20))
		}
	}
	fmt.Printf("  retained at end: %d likes, %d comments, %d activities\n",
		rep.Retained.Likes, rep.Retained.Comments, rep.Retained.Activities)
	snap := w.Graph.Retention().Snapshot()
	fmt.Printf("  retention counters: sweeps %d, evicted likes %d, comments %d, activities %d\n",
		snap.Sweeps, snap.Likes, snap.Comments, snap.Activities)
	rt := rep.RuntimeEnd
	fmt.Printf("  runtime at end: heap %d MiB (sys %d MiB), %d goroutines, GC %d cycles (pause total %v, last %v), sched p99 %v\n",
		rt.HeapAllocBytes>>20, rt.SysBytes>>20, rt.Goroutines, rt.GCCycles,
		rt.GCPauseTotal.Round(time.Microsecond), rt.LastGCPause.Round(time.Microsecond),
		rt.SchedLatencyP99)

	if prof != nil {
		if err := prof.writeReport(rep); err != nil {
			fmt.Fprintf(os.Stderr, "repro scale: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  profiles + report.json written to %s (window: post-%v warmup through drain)\n",
			*profileDir, *warmup)
	}
}

// profileCapture owns the pprof capture for one steady-state window.
type profileCapture struct {
	dir     string
	cpuFile *os.File
	started bool
}

// newProfileCapture prepares the directory and arms the contention
// profilers. Mutex/block sampling must be on before the load starts —
// they accumulate globally and are snapshotted at window close; the CPU
// profile alone is started/stopped exactly on the window edges.
func newProfileCapture(dir string) (*profileCapture, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	runtime.SetMutexProfileFraction(100)
	runtime.SetBlockProfileRate(100_000) // sample blocking events >= 100µs
	return &profileCapture{dir: dir}, nil
}

// start begins the CPU profile; called at the steady-state edge.
func (p *profileCapture) start() {
	f, err := os.Create(filepath.Join(p.dir, "cpu.pprof"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro scale: cpu profile: %v\n", err)
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "repro scale: cpu profile: %v\n", err)
		f.Close()
		return
	}
	p.cpuFile = f
	p.started = true
}

// stop ends the CPU profile and writes the snapshot profiles; called
// after the worker pool drains.
func (p *profileCapture) stop() {
	if p.started {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.started = false
	}
	runtime.GC() // settle the heap profile on live objects
	for _, name := range []string{"heap", "mutex", "block"} {
		prof := pprof.Lookup(name)
		if prof == nil {
			continue
		}
		f, err := os.Create(filepath.Join(p.dir, name+".pprof"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro scale: %s profile: %v\n", name, err)
			continue
		}
		if err := prof.WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "repro scale: %s profile: %v\n", name, err)
		}
		f.Close()
	}
}

// writeReport persists the LoadReport (per-sweep runtime snapshots
// included) next to the profiles.
func (p *profileCapture) writeReport(rep workload.LoadReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(p.dir, "report.json"), append(data, '\n'), 0o644)
}
