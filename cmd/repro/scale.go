package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/simclock"
	"repro/internal/workload"
)

// runScale is the `repro scale` subcommand: build a 1M–10M-account graph
// and drive the open-loop load generator against it, measuring wall-clock
// like-latency SLOs (the simulated clock paces arrivals; simclock.Real
// times the applies).
func runScale(args []string) {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	accounts := fs.Int("accounts", 1_000_000, "population size")
	rps := fs.Int("rps", 2000, "target arrival rate (per simulated second)")
	duration := fs.Duration("duration", 60*time.Second, "simulated load duration")
	workers := fs.Int("workers", 0, "apply-pool size (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "store stripe count (0 = default)")
	friends := fs.Float64("friends", 0, "mean friend degree (0 = no friendship edges)")
	retention := fs.Duration("retention", 0, "edge-history retention window (0 = infinite)")
	sweepEvery := fs.Duration("sweep-every", 0, "retention sweep period in simulated time (0 = never)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	fmt.Printf("building %d-account graph (%d stripes requested, GOMAXPROCS %d)...\n",
		*accounts, *shards, runtime.GOMAXPROCS(0))
	t0 := time.Now()
	w, err := workload.BuildScale(workload.ScaleConfig{
		Accounts:        *accounts,
		AvgFriends:      *friends,
		Shards:          *shards,
		RetentionWindow: *retention,
		Seed:            *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro scale: %v\n", err)
		os.Exit(1)
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	fmt.Printf("built in %v: %d pages, %d hot posts, %d friend edges, heap %d MiB\n",
		time.Since(t0).Round(time.Millisecond), len(w.Pages), len(w.Posts),
		w.FriendEdges, mem.HeapAlloc>>20)

	fmt.Printf("driving %d rps for %v (simulated)...\n", *rps, *duration)
	rep := w.RunLoad(workload.LoadConfig{
		TargetRPS:  *rps,
		Duration:   *duration,
		Workers:    *workers,
		SweepEvery: *sweepEvery,
		Timing:     simclock.Real{},
		Seed:       *seed,
	})

	fmt.Printf("offered %d requests in %v wall (%.0f applied rps)\n",
		rep.Offered, rep.WallElapsed.Round(time.Millisecond), rep.AchievedRPS())
	fmt.Printf("  likes %d (dup %d), comments %d, posts %d\n",
		rep.Likes, rep.DuplicateLikes, rep.Comments, rep.Posts)
	fmt.Printf("  like latency p50 %v  p99 %v\n", rep.P50, rep.P99)
	if rep.Sweeps > 0 {
		fmt.Printf("  retention: %d sweeps evicted %d likes / %d comments / %d activities\n",
			rep.Sweeps, rep.Evicted.Likes, rep.Evicted.Comments, rep.Evicted.Activities)
		for _, s := range rep.Samples {
			fmt.Printf("    sweep %s: retained %d likes, %d comments\n",
				s.At.Format("15:04:05"), s.Retained.Likes, s.Retained.Comments)
		}
	}
	fmt.Printf("  retained at end: %d likes, %d comments, %d activities\n",
		rep.Retained.Likes, rep.Retained.Comments, rep.Retained.Activities)
	snap := w.Graph.Retention().Snapshot()
	fmt.Printf("  retention counters: sweeps %d, evicted likes %d, comments %d, activities %d\n",
		snap.Sweeps, snap.Likes, snap.Comments, snap.Activities)
}
