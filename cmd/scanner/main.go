// Command scanner probes third-party applications for access-token
// leakage, implementing the tool of Section 2.2: it walks each app's
// login URL on a test account, retrieves the client-side token, and
// verifies the token can read and write without the application secret.
//
// Two modes:
//
//	scanner -demo
//	    spin up an in-process platform with a synthetic top-100 app
//	    leaderboard and scan all of it (reproduces Table 1);
//
//	scanner -platform http://127.0.0.1:8400 -account <id> -post <id> <login-url>...
//	    scan specific login URLs against a running platformd.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/scanner"
)

func main() {
	demo := flag.Bool("demo", false, "self-contained demo: build and scan a synthetic top-100")
	platformURL := flag.String("platform", "", "platform base URL")
	account := flag.String("account", "", "test account ID")
	post := flag.String("post", "", "test post ID")
	seed := flag.Int64("seed", 1, "seed for the demo leaderboard")
	flag.Parse()

	if *demo {
		res, err := experiments.Table1(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Table.String())
		return
	}

	if *platformURL == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "scanner: need -demo, or -platform with login URLs")
		os.Exit(2)
	}
	if *account == "" {
		fmt.Fprintln(os.Stderr, "scanner: -account (test account ID) required")
		os.Exit(2)
	}
	sc := scanner.New(*platformURL, *account, *post)
	for _, loginURL := range flag.Args() {
		res := sc.ScanLoginURL(loginURL)
		verdict := "SECURE"
		if res.Susceptible {
			verdict = "SUSCEPTIBLE"
			if res.LongTerm {
				verdict += " (long-term tokens)"
			} else {
				verdict += " (short-term tokens)"
			}
		}
		fmt.Printf("%-40s app=%s %s", loginURL, res.AppID, verdict)
		if res.Reason != "" {
			fmt.Printf(" — %s", res.Reason)
		}
		fmt.Println()
	}
}
