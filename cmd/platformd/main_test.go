package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs/runtimestats"
	"repro/internal/platform"
	"repro/internal/provider"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// TestObservabilityScrape stands up the platformd handler over a world
// that has run one milking round and deployed a countermeasure, then
// scrapes it like a monitoring stack would: /metrics must expose every
// required family, /debug/traces must show the like pipeline, and the
// pprof index must answer.
func TestObservabilityScrape(t *testing.T) {
	s, err := core.NewStudy(workload.Options{
		Scale:      5000,
		MinMembers: 60,
		Networks:   []string{"mg-likers.com"},
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mirror main()'s daemon wiring: runtime families on the platform
	// registry, one sample so the sampler-fed gauges have data. Measure
	// every eligible alloc window so the per-op gauges are guaranteed to
	// materialize from a single round.
	sampler := runtimestats.Register(s.Scenario.Platform.Obs.M(), simclock.Real{})
	s.Scenario.Platform.Obs.A().SetSampleEvery(1)
	if res := s.MilkNetwork("mg-likers.com"); res.Err != nil {
		t.Fatal(res.Err)
	}
	s.Countermeasures().SetTokenRateLimit(10, time.Hour)
	runtime.GC() // guarantee >= 1 pause so the GC histogram has series
	sampler.Sample()

	srv := httptest.NewServer(buildHandler(s.Scenario.Platform))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// One request through the instrumented API handler, so the HTTP
	// middleware families have data (the in-process milking round above
	// used the local client, which bypasses HTTP).
	get("/me?access_token=bogus")

	_, metricsBody := get("/metrics")
	for _, want := range []string{
		`graphapi_requests_total{platform="facebook",op="like",code="0"}`,
		`graphapi_request_seconds_bucket{platform="facebook",op="like",le="+Inf"}`,
		`graphapi_http_requests_total{endpoint="/me",status=`,
		`collusion_likes_delivered_total{network="mg-likers.com"}`,
		`oauth_tokens_issued_total`,
		`oauth_tokens_invalidated_total`,
		`defense_actions_total{countermeasure="token-rate-limit",action="deploy"} 1`,
		`socialgraph_shard_lock_total{shard="0",outcome=`,
		`runtime_goroutines`,
		`runtime_heap_alloc_bytes`,
		`runtime_gc_pause_seconds_bucket`,
		`runtime_sched_latency_seconds{quantile="0.99"}`,
		`allocs_per_op{platform="facebook",op="graphapi.like_batch"}`,
		`allocs_per_op{platform="facebook",op="defense.chain"}`,
		`allocs_per_op{platform="facebook",op="shard.apply"}`,
		`allocs_per_op{platform="facebook",op="milk.round"}`,
		`traces_dropped_total`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	_, tracesBody := get("/debug/traces")
	// Delivery batches by default, so the burst's traced chunk roots at
	// graphapi.like_batch; the per-op like series above still prove the
	// batched path records op="like" metrics exactly.
	for _, want := range []string{"collusion.deliver", "graphapi.like_batch", "oauth.validate", "shard.apply", "milk.round"} {
		if !strings.Contains(tracesBody, `"name":"`+want+`"`) {
			t.Errorf("/debug/traces missing span %q", want)
		}
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
}

// TestMultiProviderMounts stands up the multi-provider handler and drives
// the non-default provider through its prefix: the code-flow dialog, the
// token exchange, a like, and the per-platform metrics surface.
func TestMultiProviderMounts(t *testing.T) {
	internet := netsim.NewInternet()
	if err := internet.RegisterAS(netsim.AS{Number: 65000, Name: "GENERIC-HOSTING", Country: "US"}, "192.168.0.0/16"); err != nil {
		t.Fatal(err)
	}
	m := platform.NewMulti(simclock.NewReal(), internet, provider.MustGet("facebook"), provider.MustGet("pictogram"))
	srv := httptest.NewServer(buildMultiHandler(m))
	defer srv.Close()

	pg := m.Get("pictogram")
	app := pg.Apps.RegisterUnreviewed(apps.Config{
		Name:        "Demo Companion",
		RedirectURI: "https://demo-companion.example/callback",
		Lifetime:    apps.LongTerm,
		Permissions: []string{pg.Provider.ScopePublish()},
	})
	acct := pg.Graph.CreateAccount("pg-demo", "IN", time.Now())

	client := platform.NewHTTPClientFor(provider.MustGet("pictogram"), srv.URL+"/pictogram")
	code, err := client.AuthorizeCode(app.ID, app.RedirectURI, acct.ID, []string{pg.Provider.ScopePublish()})
	if err != nil {
		t.Fatalf("AuthorizeCode: %v", err)
	}
	tok, err := client.ExchangeCode(app.ID, app.Secret, app.RedirectURI, code)
	if err != nil {
		t.Fatalf("ExchangeCode: %v", err)
	}
	if !strings.HasPrefix(tok, "PTGR.") {
		t.Fatalf("pictogram token %q lacks provider format", tok)
	}
	post, err := client.Publish(tok, "hello from B", "192.168.0.9")
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := client.Like(tok, post, "192.168.0.9"); err != nil {
		t.Fatalf("Like: %v", err)
	}

	// The implicit flow must be refused: pictogram is code-flow only.
	if _, err := client.AuthorizeImplicit(app.ID, app.RedirectURI, acct.ID, []string{pg.Provider.ScopePublish()}); err == nil {
		t.Fatal("implicit flow succeeded on a code-flow-only provider")
	}

	resp, err := http.Get(srv.URL + "/pictogram/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := `graphapi_requests_total{platform="pictogram",op="like",code="0"}`; !strings.Contains(string(body), want) {
		t.Errorf("/pictogram/metrics missing %q", want)
	}
}
