package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs/runtimestats"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// TestObservabilityScrape stands up the platformd handler over a world
// that has run one milking round and deployed a countermeasure, then
// scrapes it like a monitoring stack would: /metrics must expose every
// required family, /debug/traces must show the like pipeline, and the
// pprof index must answer.
func TestObservabilityScrape(t *testing.T) {
	s, err := core.NewStudy(workload.Options{
		Scale:      5000,
		MinMembers: 60,
		Networks:   []string{"mg-likers.com"},
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mirror main()'s daemon wiring: runtime families on the platform
	// registry, one sample so the sampler-fed gauges have data. Measure
	// every eligible alloc window so the per-op gauges are guaranteed to
	// materialize from a single round.
	sampler := runtimestats.Register(s.Scenario.Platform.Obs.M(), simclock.Real{})
	s.Scenario.Platform.Obs.A().SetSampleEvery(1)
	if res := s.MilkNetwork("mg-likers.com"); res.Err != nil {
		t.Fatal(res.Err)
	}
	s.Countermeasures().SetTokenRateLimit(10, time.Hour)
	runtime.GC() // guarantee >= 1 pause so the GC histogram has series
	sampler.Sample()

	srv := httptest.NewServer(buildHandler(s.Scenario.Platform))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// One request through the instrumented API handler, so the HTTP
	// middleware families have data (the in-process milking round above
	// used the local client, which bypasses HTTP).
	get("/me?access_token=bogus")

	_, metricsBody := get("/metrics")
	for _, want := range []string{
		`graphapi_requests_total{op="like",code="0"}`,
		`graphapi_request_seconds_bucket{op="like",le="+Inf"}`,
		`graphapi_http_requests_total{endpoint="/me",status=`,
		`collusion_likes_delivered_total{network="mg-likers.com"}`,
		`oauth_tokens_issued_total`,
		`oauth_tokens_invalidated_total`,
		`defense_actions_total{countermeasure="token-rate-limit",action="deploy"} 1`,
		`socialgraph_shard_lock_total{shard="0",outcome=`,
		`runtime_goroutines`,
		`runtime_heap_alloc_bytes`,
		`runtime_gc_pause_seconds_bucket`,
		`runtime_sched_latency_seconds{quantile="0.99"}`,
		`allocs_per_op{op="graphapi.like_batch"}`,
		`allocs_per_op{op="defense.chain"}`,
		`allocs_per_op{op="shard.apply"}`,
		`allocs_per_op{op="milk.round"}`,
		`traces_dropped_total`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	_, tracesBody := get("/debug/traces")
	// Delivery batches by default, so the burst's traced chunk roots at
	// graphapi.like_batch; the per-op like series above still prove the
	// batched path records op="like" metrics exactly.
	for _, want := range []string{"collusion.deliver", "graphapi.like_batch", "oauth.validate", "shard.apply", "milk.round"} {
		if !strings.Contains(tracesBody, `"name":"`+want+`"`) {
			t.Errorf("/debug/traces missing span %q", want)
		}
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
}
