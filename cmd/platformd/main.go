// Command platformd serves the simulated social platform over HTTP: the
// OAuth dialog, the token endpoint, and the Graph API.
//
// On startup it seeds a demo world — one susceptible application (HTC
// Sense-style), one secure application, and a handful of member accounts —
// and prints the identifiers clients need. Collusion network daemons
// (cmd/collusiond), the scanner (cmd/scanner), and the milker
// (cmd/milker) all speak to this server.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/netsim"
	"repro/internal/obs/runtimestats"
	"repro/internal/platform"
	"repro/internal/provider"
	"repro/internal/redact"
	"repro/internal/simclock"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8400", "listen address")
	members := flag.Int("members", 50, "demo member accounts to create")
	printSecret := flag.Bool("print-secret", false, "print the secure app's full secret (needed to drive the code flow by hand)")
	providers := flag.String("providers", strings.Join(provider.Names(), ","),
		"comma-separated providers to serve; the default provider mounts at /, every provider also at /<name>/")
	flag.Parse()

	internet := netsim.NewInternet()
	must(internet.RegisterAS(netsim.AS{Number: 64500, Name: "BP-HOSTING-A", Country: "RU", Bulletproof: true}, "203.0.0.0/16"))
	must(internet.RegisterAS(netsim.AS{Number: 65000, Name: "GENERIC-HOSTING", Country: "US"}, "192.168.0.0/16"))

	var provs []provider.Provider
	for _, name := range strings.Split(*providers, ",") {
		prov, ok := provider.Get(strings.TrimSpace(name))
		if !ok {
			log.Fatalf("platformd: unknown provider %q (known: %s)", name, strings.Join(provider.Names(), ", "))
		}
		provs = append(provs, prov)
	}
	m := platform.NewMulti(simclock.NewReal(), internet, provs...)
	p := m.Default()

	// Runtime/GC families on /metrics, sampled in the background so the
	// GC-pause histogram and alloc-rate gauge stay fresh between scrapes.
	sampler := runtimestats.Register(p.Obs.M(), simclock.NewReal())
	sampler.Start(5 * time.Second)
	defer sampler.Stop()

	susceptible := p.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc-sense.example/callback",
		ClientFlowEnabled: true,
		RequireAppSecret:  false,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermEmail, apps.PermPublishActions},
		MAU:               1_000_000,
		DAU:               1_000_000,
	})
	secure := p.Apps.Register(apps.Config{
		Name:              "Secure Player",
		RedirectURI:       "https://secure-player.example/callback",
		ClientFlowEnabled: false,
		RequireAppSecret:  true,
		Lifetime:          apps.ShortTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
		MAU:               5_000_000,
		DAU:               500_000,
	})

	fmt.Printf("platformd listening on http://%s (providers: %s)\n", *addr, strings.Join(m.Names(), ", "))
	fmt.Printf("susceptible app: id=%s redirect=%s\n", susceptible.ID, susceptible.RedirectURI)
	fmt.Printf("secure app:      id=%s redirect=%s (secret=%s; pass -print-secret for the full value)\n",
		secure.ID, secure.RedirectURI, redact.Token(secure.Secret))
	if *printSecret {
		//collusionvet:allow tokenflow -- operator explicitly asked via -print-secret
		fmt.Printf("secure app secret: %s\n", secure.Secret)
	}
	for i := 0; i < *members; i++ {
		acct := p.Graph.CreateAccount(fmt.Sprintf("member-%d", i+1), "IN", time.Now())
		if i < 3 {
			fmt.Printf("member account: %s\n", acct.ID)
		}
	}
	fmt.Printf("(and %d more member accounts)\n", *members-3)
	fmt.Println("dialog: GET /dialog/oauth?client_id=&redirect_uri=&response_type=token&scope=publish_actions&account_id=")

	// Every non-default platform gets its own demo world: a companion-style
	// app (code-flow only where the provider demands it) and member
	// accounts, reachable under /<provider>/.
	for _, name := range m.Names() {
		sp := m.Get(name)
		if sp == p {
			continue
		}
		prov := sp.Provider
		app := sp.Apps.RegisterUnreviewed(apps.Config{
			Name:        "Demo Companion",
			RedirectURI: "https://demo-companion.example/callback",
			Lifetime:    apps.LongTerm,
			Permissions: []string{prov.ScopePublish(), prov.ScopeFriends()},
		})
		fmt.Printf("%s app: id=%s redirect=%s (secret=%s; mounts at /%s/)\n",
			name, app.ID, app.RedirectURI, redact.Token(app.Secret), name)
		for i := 0; i < *members; i++ {
			sp.Graph.CreateAccount(fmt.Sprintf("%s-member-%d", name, i+1), "IN", time.Now())
		}
	}

	serve(*addr, buildMultiHandler(m))
}

// buildHandler mounts one platform's Graph API (wrapped in request
// telemetry) at / alongside its observability surfaces: /metrics
// (Prometheus text exposition), /debug/traces (JSONL span export), and
// net/http/pprof.
func buildHandler(p *platform.Platform) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", p.Handler())
	p.Obs.RegisterDebug(mux)
	return mux
}

// buildMultiHandler mounts every registered platform: the default
// provider keeps the historical root mount, and each provider (default
// included) is also served — API plus its own /metrics, /debug/traces,
// and pprof — under /<provider>/.
func buildMultiHandler(m *platform.Multi) http.Handler {
	mux := http.NewServeMux()
	for _, name := range m.Names() {
		sp := m.Get(name)
		mux.Handle("/"+name+"/", http.StripPrefix("/"+name, buildHandler(sp)))
	}
	mux.Handle("/", buildHandler(m.Default()))
	return mux
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains in-flight
// requests before exiting.
func serve(addr string, handler http.Handler) {
	srv := &http.Server{Addr: addr, Handler: handler}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("platformd: shut down cleanly")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
