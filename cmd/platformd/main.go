// Command platformd serves the simulated social platform over HTTP: the
// OAuth dialog, the token endpoint, and the Graph API.
//
// On startup it seeds a demo world — one susceptible application (HTC
// Sense-style), one secure application, and a handful of member accounts —
// and prints the identifiers clients need. Collusion network daemons
// (cmd/collusiond), the scanner (cmd/scanner), and the milker
// (cmd/milker) all speak to this server.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/netsim"
	"repro/internal/obs/runtimestats"
	"repro/internal/platform"
	"repro/internal/redact"
	"repro/internal/simclock"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8400", "listen address")
	members := flag.Int("members", 50, "demo member accounts to create")
	printSecret := flag.Bool("print-secret", false, "print the secure app's full secret (needed to drive the code flow by hand)")
	flag.Parse()

	internet := netsim.NewInternet()
	must(internet.RegisterAS(netsim.AS{Number: 64500, Name: "BP-HOSTING-A", Country: "RU", Bulletproof: true}, "203.0.0.0/16"))
	must(internet.RegisterAS(netsim.AS{Number: 65000, Name: "GENERIC-HOSTING", Country: "US"}, "192.168.0.0/16"))

	p := platform.New(simclock.NewReal(), internet)

	// Runtime/GC families on /metrics, sampled in the background so the
	// GC-pause histogram and alloc-rate gauge stay fresh between scrapes.
	sampler := runtimestats.Register(p.Obs.M(), simclock.NewReal())
	sampler.Start(5 * time.Second)
	defer sampler.Stop()

	susceptible := p.Apps.Register(apps.Config{
		Name:              "HTC Sense",
		RedirectURI:       "https://htc-sense.example/callback",
		ClientFlowEnabled: true,
		RequireAppSecret:  false,
		Lifetime:          apps.LongTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermEmail, apps.PermPublishActions},
		MAU:               1_000_000,
		DAU:               1_000_000,
	})
	secure := p.Apps.Register(apps.Config{
		Name:              "Secure Player",
		RedirectURI:       "https://secure-player.example/callback",
		ClientFlowEnabled: false,
		RequireAppSecret:  true,
		Lifetime:          apps.ShortTerm,
		Permissions:       []string{apps.PermPublicProfile, apps.PermPublishActions},
		MAU:               5_000_000,
		DAU:               500_000,
	})

	fmt.Printf("platformd listening on http://%s\n", *addr)
	fmt.Printf("susceptible app: id=%s redirect=%s\n", susceptible.ID, susceptible.RedirectURI)
	fmt.Printf("secure app:      id=%s redirect=%s (secret=%s; pass -print-secret for the full value)\n",
		secure.ID, secure.RedirectURI, redact.Token(secure.Secret))
	if *printSecret {
		//collusionvet:allow tokenflow -- operator explicitly asked via -print-secret
		fmt.Printf("secure app secret: %s\n", secure.Secret)
	}
	for i := 0; i < *members; i++ {
		acct := p.Graph.CreateAccount(fmt.Sprintf("member-%d", i+1), "IN", time.Now())
		if i < 3 {
			fmt.Printf("member account: %s\n", acct.ID)
		}
	}
	fmt.Printf("(and %d more member accounts)\n", *members-3)
	fmt.Println("dialog: GET /dialog/oauth?client_id=&redirect_uri=&response_type=token&scope=publish_actions&account_id=")

	serve(*addr, buildHandler(p))
}

// buildHandler mounts the Graph API (wrapped in request telemetry) at /
// alongside the observability surfaces: /metrics (Prometheus text
// exposition), /debug/traces (JSONL span export), and net/http/pprof.
func buildHandler(p *platform.Platform) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", p.Handler())
	p.Obs.RegisterDebug(mux)
	return mux
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains in-flight
// requests before exiting.
func serve(addr string, handler http.Handler) {
	srv := &http.Server{Addr: addr, Handler: handler}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("platformd: shut down cleanly")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
