// Command milker runs a honeypot milking campaign, either self-contained
// (in-process platform and collusion networks at a configurable scale —
// reproduces Table 4) or against running platformd/collusiond daemons
// over HTTP.
//
//	milker -demo -scale 100 -posts-divisor 20
//	milker -platform http://127.0.0.1:8400 -site http://127.0.0.1:8500 \
//	    -app <app-id> -redirect <uri> -posts 20
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/honeypot"
	"repro/internal/obs"
	"repro/internal/obs/runtimestats"
	"repro/internal/platform"
	"repro/internal/simclock"
)

// serveMetrics exposes /metrics, /debug/traces, and net/http/pprof on
// addr in the background.
func serveMetrics(addr string, o *obs.Observer, logger *obs.Logger) {
	mux := http.NewServeMux()
	o.RegisterDebug(mux)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil && err != http.ErrServerClosed {
			logger.Errorf("metrics server: %v", err)
		}
	}()
}

func main() {
	demo := flag.Bool("demo", false, "self-contained Table 4 campaign")
	scale := flag.Int("scale", 100, "demo population scale divisor")
	postsDivisor := flag.Int("posts-divisor", 20, "demo post-count divisor")
	seed := flag.Int64("seed", 1, "random seed")

	platformURL := flag.String("platform", "", "platform base URL (HTTP mode)")
	siteURL := flag.String("site", "", "collusion network base URL (HTTP mode)")
	appID := flag.String("app", "", "exploited application ID (HTTP mode)")
	redirect := flag.String("redirect", "", "exploited application redirect URI (HTTP mode)")
	account := flag.String("account", "", "honeypot's platform account ID (HTTP mode)")
	posts := flag.Int("posts", 20, "posts to milk (HTTP mode)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/traces, and pprof on this address (empty disables)")
	flag.Parse()

	// All diagnostics flow through the redacting leveled logger — a
	// token in an error string is masked before it can reach stderr.
	logger := obs.NewLogger("milker", os.Stderr, obs.LevelInfo).WithClock(simclock.NewReal())

	// The campaign's own telemetry: progress counters plus pprof, so a
	// long milking run can be watched and profiled while it works.
	observer := obs.New(simclock.NewReal())
	milked := observer.M().Counter("milker_posts_milked_total",
		"Honeypot posts successfully milked.").With()
	observed := observer.M().Counter("milker_likes_observed_total",
		"Likes observed on milked honeypot posts.").With()
	sampler := runtimestats.Register(observer.M(), simclock.NewReal())
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, observer, logger)
		sampler.Start(5 * time.Second)
		defer sampler.Stop()
	}

	if *demo {
		res, err := experiments.Table4(experiments.Table4Config{
			Scale:        *scale,
			PostsDivisor: *postsDivisor,
			Seed:         *seed,
		})
		if err != nil {
			logger.Fatalf("%v", err)
		}
		fmt.Print(res.Table.String())
		return
	}

	if *platformURL == "" || *siteURL == "" || *appID == "" || *redirect == "" || *account == "" {
		logger.Fatalf("need -demo, or -platform/-site/-app/-redirect/-account")
	}

	// HTTP mode: the honeypot acts as a pre-registered platform account
	// (platformd prints a few on startup), posts through the Graph API,
	// and drives the collusion site over HTTP.
	client := platform.NewHTTPClient(*platformURL)
	site := honeypot.NewHTTPSite(*siteURL, *siteURL)
	hp := honeypot.New(honeypot.Config{
		Clock:     simclock.NewReal(),
		Client:    client,
		Site:      site,
		App:       apps.App{ID: *appID, RedirectURI: *redirect},
		Name:      "milker-honeypot",
		AccountID: *account,
	})
	if err := hp.Join(); err != nil {
		logger.Fatalf("join failed (is the honeypot account registered on the platform?): %v", err)
	}
	est := honeypot.NewEstimator()
	for i := 0; i < *posts; i++ {
		postID, delivered, err := hp.MilkOnce()
		if err != nil {
			logger.Warnf("post %d: %v", i+1, err)
			time.Sleep(time.Second)
			continue
		}
		likes, err := client.LikesOf(hp.Token(), postID)
		if err != nil {
			logger.Warnf("crawling %s: %v", postID, err)
			continue
		}
		likers := make([]string, len(likes))
		for j, l := range likes {
			likers[j] = l.AccountID
		}
		est.ObservePost(likers)
		milked.Inc()
		observed.Add(int64(len(likers)))
		fmt.Printf("post %2d: delivered=%d cumulative-unique=%d\n", i+1, delivered, est.MembershipEstimate())
	}
	fmt.Printf("\nposts=%d likes=%d avg=%.1f membership>=%d\n",
		est.PostsSubmitted(), est.TotalLikes(), est.AvgLikesPerPost(), est.MembershipEstimate())
}
