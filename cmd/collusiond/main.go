// Command collusiond serves one collusion network website against a
// running platformd. Members install the exploited application via the
// platform's OAuth dialog, paste the leaked token into this site, and
// request likes; the daemon replays pooled tokens through the platform's
// Graph API.
//
//	collusiond -platform http://127.0.0.1:8400 -app <app-id> \
//	    -redirect https://htc-sense.example/callback -name demo-liker.net
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collusion"
	"repro/internal/obs"
	"repro/internal/obs/runtimestats"
	"repro/internal/platform"
	"repro/internal/simclock"
)

// serveMetrics exposes the observability surfaces — /metrics,
// /debug/traces, and net/http/pprof — on their own listener so the
// delivery engine's stats can be scraped without touching the
// member-facing site.
func serveMetrics(addr string, o *obs.Observer, logger *obs.Logger) {
	mux := http.NewServeMux()
	o.RegisterDebug(mux)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil && err != http.ErrServerClosed {
			logger.Errorf("metrics server: %v", err)
		}
	}()
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8500", "listen address")
	platformURL := flag.String("platform", "http://127.0.0.1:8400", "platform base URL")
	appID := flag.String("app", "", "exploited application ID (required)")
	redirect := flag.String("redirect", "", "exploited application redirect URI (required)")
	name := flag.String("name", "demo-liker.net", "collusion network name")
	likes := flag.Int("likes", 50, "likes delivered per request")
	comments := flag.Int("comments", 10, "comments per request (0 disables)")
	captcha := flag.Bool("captcha", false, "require CAPTCHA per request")
	dailyLimit := flag.Int("daily-limit", 0, "requests per member per day (0 = unlimited)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/traces, and pprof on this address (empty disables)")
	flag.Parse()

	// All diagnostics flow through the redacting leveled logger — member
	// tokens must never reach stderr intact, even inside error strings.
	logger := obs.NewLogger("collusiond", os.Stderr, obs.LevelInfo).WithClock(simclock.NewReal())

	if *appID == "" || *redirect == "" {
		logger.Fatalf("-app and -redirect are required (see platformd output)")
	}

	client := platform.NewHTTPClient(*platformURL)
	cfg := collusion.Config{
		Name:               *name,
		AppID:              *appID,
		AppRedirectURI:     *redirect,
		LikesPerRequest:    *likes,
		CommentsPerRequest: *comments,
		CommentDictionary:  []string{"nice pic", "awesome", "gr8 bro", "so lovely", "w00wwwwwwww"},
		CaptchaRequired:    *captcha,
		DailyRequestLimit:  *dailyLimit,
		IPs:                []string{"192.168.1.10", "192.168.1.11"},
		AdsPerVisit:        3,
		PremiumPlans: []collusion.Plan{
			{Name: "gold", PriceUSD: 29.99, LikesPerPost: 2000, AutoDelivery: true, NoRestriction: true},
		},
	}
	network := collusion.NewNetwork(cfg, simclock.NewReal(), client)
	observer := obs.New(simclock.NewReal())
	network.SetObserver(observer)
	sampler := runtimestats.Register(observer.M(), simclock.NewReal())
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, observer, logger)
		sampler.Start(5 * time.Second)
		defer sampler.Stop()
	}

	fmt.Printf("collusiond %q listening on http://%s\n", *name, *addr)
	fmt.Printf("exploiting app %s via %s\n", *appID, *platformURL)
	fmt.Println("endpoints: GET /  POST /submit-token  POST /request-likes  POST /request-comments  POST /adwall  POST /buy")

	srv := &http.Server{Addr: *addr, Handler: collusion.Handler(network)}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Fatalf("%v", err)
	}
	st := network.Stats()
	fmt.Printf("collusiond: shut down; tokens=%d likes=%d revenue=$%.2f\n",
		st.TokensCollected, st.LikesDelivered, st.RevenueUSD)
}
